package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefault(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers() = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestSetWorkersRoundTrip(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	if prev := SetWorkers(3); prev != 0 {
		t.Errorf("first SetWorkers returned %d, want 0", prev)
	}
	if got := Workers(); got != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", got)
	}
	if prev := SetWorkers(-5); prev != 3 {
		t.Errorf("SetWorkers(-5) returned %d, want 3", prev)
	}
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("negative SetWorkers should restore default: got %d want %d", got, want)
	}
}

func TestMapOrderPreserved(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	for _, w := range []int{1, 2, 8} {
		SetWorkers(w)
		out, err := Map(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: len %d", w, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, func(int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Errorf("Map(0) = %v, %v; want nil, nil", out, err)
	}
}

func TestForEachError(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	sentinel := errors.New("boom")
	for _, w := range []int{1, 8} {
		SetWorkers(w)
		err := ForEach(50, func(i int) error {
			if i == 17 {
				return fmt.Errorf("item %d: %w", i, sentinel)
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: err = %v, want wrapped sentinel", w, err)
		}
	}
}

func TestMapErrorReturnsNilSlice(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	out, err := Map(10, func(i int) (int, error) {
		if i%2 == 1 {
			return 0, errors.New("odd")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if out != nil {
		t.Errorf("errored Map returned non-nil slice %v", out)
	}
}

func TestPanicPropagates(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", w)
				}
				msg := fmt.Sprint(r)
				if pe, ok := r.(error); ok {
					msg = pe.Error()
				}
				if !strings.Contains(msg, "kaput") {
					t.Errorf("workers=%d: panic message %q lost the cause", w, msg)
				}
			}()
			_ = ForEach(20, func(i int) error {
				if i == 7 {
					panic("kaput")
				}
				return nil
			})
		}()
	}
}

func TestConcurrencyBounded(t *testing.T) {
	defer SetWorkers(SetWorkers(3))
	var cur, peak atomic.Int64
	var mu sync.Mutex
	err := ForEach(64, func(int) error {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent items with SetWorkers(3)", p)
	}
}

func TestForEachAllItemsRun(t *testing.T) {
	defer SetWorkers(SetWorkers(6))
	var ran [500]atomic.Bool
	if err := ForEach(len(ran), func(i int) error { ran[i].Store(true); return nil }); err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("item %d never ran", i)
		}
	}
}

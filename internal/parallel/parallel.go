// Package parallel provides the bounded worker pool shared by every
// embarrassingly-parallel hot path in the repository: clip featurization,
// corpus synthesis, the corpus×model training grid, and per-mode decoder
// measurement.
//
// The package is deliberately tiny. ForEach and Map fan a fixed number of
// index-addressed work items out over at most Workers() goroutines, always
// writing results back by index so output order never depends on
// scheduling. Combined with per-item determinism (each item derives its
// own RNG from a seed instead of sharing a stream), this yields the
// repository-wide contract: for a fixed seed, parallel and serial
// execution produce bit-identical results.
//
// Panics inside work functions are captured and re-raised on the calling
// goroutine (first panic wins) so a worker crash cannot take down the
// process without unwinding through the caller, and remaining items are
// abandoned quickly.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// workers holds the pool-size override; 0 means "use GOMAXPROCS at call
// time". Stored atomically so tests can flip it around concurrent code.
var workers atomic.Int64

// Workers returns the current worker-count setting: the value set by
// SetWorkers, or GOMAXPROCS(0) when unset.
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the pool size for subsequent ForEach/Map calls and
// returns the previous override (0 = GOMAXPROCS default). n <= 0 restores
// the default. Typical test usage:
//
//	defer parallel.SetWorkers(parallel.SetWorkers(1))
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workers.Swap(int64(n)))
}

// panicErr carries a captured worker panic (plus its stack) back to the
// calling goroutine.
type panicErr struct {
	value any
	stack []byte
}

func (p *panicErr) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", p.value, p.stack)
}

// run executes fn(i) for i in [0, n) on at most Workers() goroutines.
// Items are claimed from an atomic cursor, so scheduling order is
// arbitrary, but callers only ever communicate through index-addressed
// slots, keeping results order-preserving. stop is polled between items
// so errors cancel remaining work promptly.
func run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		// Serial fast path: no goroutines, panics propagate natively.
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		pmu    sync.Mutex
		pval   *panicErr
	)
	stopped := func() bool {
		pmu.Lock()
		defer pmu.Unlock()
		return pval != nil
	}
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n || stopped() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							stack := make([]byte, 64<<10)
							stack = stack[:runtime.Stack(stack, false)]
							pmu.Lock()
							if pval == nil {
								pval = &panicErr{value: r, stack: stack}
							}
							pmu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if pval != nil {
		panic(pval)
	}
}

// ForEach runs fn(i) for every i in [0, n) using the pool. It returns the
// lowest-index error among those observed, or nil. Once any item fails,
// remaining work is abandoned on a best-effort basis, so which error is
// returned can vary under concurrency — error values are for reporting,
// not for deterministic comparison.
func ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	run(n, func(i int) {
		if failed.Load() {
			return
		}
		if err := fn(i); err != nil {
			errs[i] = err
			failed.Store(true)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over [0, n) and returns the results in index order. On
// error it returns the lowest-index error and a nil slice.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

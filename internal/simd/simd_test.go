package simd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// withBothDispatch runs fn once with the vector backend enabled (when
// the host has one) and once force-disabled, restoring the prior
// setting afterwards. The enabled argument lets the body label
// failures.
func withBothDispatch(t *testing.T, fn func(t *testing.T, enabled bool)) {
	t.Helper()
	prev := Enabled()
	defer SetEnabled(prev)
	if Available() {
		SetEnabled(true)
		fn(t, true)
	}
	SetEnabled(false)
	fn(t, false)
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
	}
	return s
}

func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

func TestSetEnabled(t *testing.T) {
	prev := Enabled()
	defer SetEnabled(prev)
	if got := SetEnabled(false); got != prev {
		t.Fatalf("SetEnabled returned %v, want previous %v", got, prev)
	}
	if Enabled() {
		t.Fatal("Enabled() true after SetEnabled(false)")
	}
	SetEnabled(true)
	if Enabled() != Available() {
		t.Fatalf("Enabled()=%v after SetEnabled(true), want Available()=%v", Enabled(), Available())
	}
}

func TestAxpy4Diff(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for n := 0; n <= 70; n++ {
			dst := randSlice(rng, n)
			want := append([]float64(nil), dst...)
			s0, s1, s2, s3 := randSlice(rng, n), randSlice(rng, n), randSlice(rng, n), randSlice(rng, n)
			a0, a1, a2, a3 := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			Axpy4(dst, s0, s1, s2, s3, a0, a1, a2, a3)
			Axpy4Ref(want, s0, s1, s2, s3, a0, a1, a2, a3)
			if i, ok := bitsEqual(dst, want); !ok {
				t.Fatalf("enabled=%v n=%d: dst[%d]=%x want %x", on, n, i,
					math.Float64bits(dst[i]), math.Float64bits(want[i]))
			}
		}
	})
}

func TestAdamDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for n := 0; n <= 70; n++ {
			w := randSlice(rng, n)
			g := randSlice(rng, n)
			m := randSlice(rng, n)
			v := make([]float64, n)
			for i := range v {
				v[i] = math.Abs(rng.NormFloat64())
			}
			w2 := append([]float64(nil), w...)
			g2 := append([]float64(nil), g...)
			m2 := append([]float64(nil), m...)
			v2 := append([]float64(nil), v...)
			inv, b1, b2 := 1.0/32, 0.9, 0.999
			c1, c2 := 1-math.Pow(b1, 7), 1-math.Pow(b2, 7)
			Adam(w, g, m, v, inv, b1, b2, c1, c2, 1e-3, 1e-8)
			AdamRef(w2, g2, m2, v2, inv, b1, b2, c1, c2, 1e-3, 1e-8)
			for name, pair := range map[string][2][]float64{"w": {w, w2}, "m": {m, m2}, "v": {v, v2}} {
				if i, ok := bitsEqual(pair[0], pair[1]); !ok {
					t.Fatalf("enabled=%v n=%d: %s[%d] mismatch", on, n, name, i)
				}
			}
		}
	})
}

func TestDotI8Diff(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for n := 0; n <= 70; n++ {
			w := randSlice(rng, 8*n)
			x := randSlice(rng, n)
			var got, want [8]float64
			DotI8(&got, w, x)
			DotI8Ref(&want, w, x)
			if i, ok := bitsEqual(got[:], want[:]); !ok {
				t.Fatalf("enabled=%v n=%d: lane %d %x want %x", on, n, i,
					math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	})
}

func TestLagDot8Diff(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for n := 0; n <= 80; n += 3 {
			x := randSlice(rng, n)
			for k := 0; k <= n+5; k++ {
				var got, want [8]float64
				LagDot8(&got, x, k)
				LagDot8Ref(&want, x, k)
				if i, ok := bitsEqual(got[:], want[:]); !ok {
					t.Fatalf("enabled=%v n=%d k=%d: lane %d", on, n, k, i)
				}
			}
		}
	})
}

func TestMulDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for n := 0; n <= 70; n++ {
			for off := 0; off < 4 && off <= n; off++ {
				dst := randSlice(rng, n)
				src := randSlice(rng, n)
				want := append([]float64(nil), dst...)
				Mul(dst[off:], src[off:])
				MulRef(want[off:], src[off:])
				if i, ok := bitsEqual(dst, want); !ok {
					t.Fatalf("enabled=%v n=%d off=%d: dst[%d]", on, n, off, i)
				}
			}
		}
	})
}

func TestSubScaledDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for n := 0; n <= 70; n++ {
			for off := 0; off < 4 && off <= n; off++ {
				x := randSlice(rng, n)
				y := randSlice(rng, n)
				c := rng.NormFloat64()
				dst := make([]float64, n)
				want := make([]float64, n)
				SubScaled(dst[off:], x[off:], y[off:], c)
				SubScaledRef(want[off:], x[off:], y[off:], c)
				if i, ok := bitsEqual(dst, want); !ok {
					t.Fatalf("enabled=%v n=%d off=%d: dst[%d]", on, n, off, i)
				}
			}
		}
	})
}

func TestSqScaleDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for n := 0; n <= 70; n++ {
			dst := randSlice(rng, n)
			want := append([]float64(nil), dst...)
			s := rng.NormFloat64()
			SqScale(dst, s)
			SqScaleRef(want, s)
			if i, ok := bitsEqual(dst, want); !ok {
				t.Fatalf("enabled=%v n=%d: dst[%d]", on, n, i)
			}
		}
	})
}

func TestCAbsDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inf := math.Inf(1)
	nan := math.NaN()
	specials := []complex128{
		0, complex(-0.0, 0), complex(0, -0.0), complex(math.Copysign(0, -1), math.Copysign(0, -1)),
		complex(inf, 3), complex(3, inf), complex(-inf, 3), complex(3, -inf),
		complex(inf, inf), complex(inf, nan), complex(nan, inf),
		complex(nan, 3), complex(3, nan), complex(nan, nan), complex(nan, 0),
		complex(1e308, 1e308), complex(5e-324, 0), complex(5e-324, 5e-324),
		complex(2.2250738585072014e-308, 1e-310), complex(1e300, 1e-300),
		complex(1, 1), complex(3, 4),
	}
	withBothDispatch(t, func(t *testing.T, on bool) {
		for n := 0; n <= 40; n++ {
			src := make([]complex128, n)
			for i := range src {
				if rng.Intn(4) == 0 && len(specials) > 0 {
					src[i] = specials[rng.Intn(len(specials))]
				} else {
					src[i] = complex(rng.NormFloat64()*1e3, rng.NormFloat64()*1e-3)
				}
			}
			dst := make([]float64, n)
			want := make([]float64, n)
			CAbs(dst, src)
			CAbsRef(want, src)
			if i, ok := bitsEqual(dst, want); !ok {
				t.Fatalf("enabled=%v n=%d: |%v| = %x want %x", on, n, src[i],
					math.Float64bits(dst[i]), math.Float64bits(want[i]))
			}
		}
		// Every special in every lane position.
		for lane := 0; lane < 4; lane++ {
			for _, z := range specials {
				src := make([]complex128, 4)
				for i := range src {
					src[i] = complex(1, 2)
				}
				src[lane] = z
				dst := make([]float64, 4)
				want := make([]float64, 4)
				CAbs(dst, src)
				CAbsRef(want, src)
				if i, ok := bitsEqual(dst, want); !ok {
					t.Fatalf("enabled=%v lane=%d special=%v: got %x want %x (cmplx.Abs=%v)",
						on, lane, z, math.Float64bits(dst[i]), math.Float64bits(want[i]), cmplx.Abs(z))
				}
			}
		}
	})
}

func TestWidenDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for n := 0; n <= 70; n++ {
			src := randSlice(rng, n)
			dst := make([]complex128, n)
			want := make([]complex128, n)
			Widen(dst, src)
			WidenRef(want, src)
			for i := range dst {
				if dst[i] != want[i] || math.Signbit(imag(dst[i])) != math.Signbit(imag(want[i])) {
					t.Fatalf("enabled=%v n=%d: dst[%d]=%v want %v", on, n, i, dst[i], want[i])
				}
			}
		}
	})
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	s := make([]complex128, n)
	for i := range s {
		s[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return s
}

func complexBitsEqual(a, b []complex128) (int, bool) {
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return i, false
		}
	}
	return 0, true
}

func TestFFTStageDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for n := 4; n <= 256; n <<= 1 {
			for size := 4; size <= n; size <<= 1 {
				x := randComplex(rng, n)
				want := append([]complex128(nil), x...)
				tw := randComplex(rng, size/2)
				FFTStage(x, size, tw)
				FFTStageRef(want, size, tw)
				if i, ok := complexBitsEqual(x, want); !ok {
					t.Fatalf("enabled=%v n=%d size=%d: x[%d]=%v want %v", on, n, size, i, x[i], want[i])
				}
			}
		}
	})
}

func TestFFTStage2Diff(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for _, nb := range []int{0, 1, 2, 3, 5, 8, 17, 64} {
			for _, w := range []complex128{1, complex(0.3, -0.95), complex(-1, 0)} {
				x := randComplex(rng, 2*nb)
				want := append([]complex128(nil), x...)
				FFTStage2(x, w)
				FFTStage2Ref(want, w)
				if i, ok := complexBitsEqual(x, want); !ok {
					t.Fatalf("enabled=%v nb=%d w=%v: x[%d]", on, nb, w, i)
				}
			}
		}
	})
}

func TestSAD4x4Diff(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for trial := 0; trial < 200; trial++ {
			as := 4 + rng.Intn(14)
			bs := 4 + rng.Intn(14)
			a := make([]byte, 3*as+4+8)
			b := make([]byte, 3*bs+4+8)
			rng.Read(a)
			rng.Read(b)
			got := SAD4x4(a, as, b, bs)
			want := SAD4x4Ref(a, as, b, bs)
			if got != want {
				t.Fatalf("enabled=%v trial=%d: got %d want %d", on, trial, got, want)
			}
		}
	})
}

func TestDeblockEdge4Diff(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	thresholds := []int32{1, 2, 4, 17, 100, 254, 255}
	withBothDispatch(t, func(t *testing.T, on bool) {
		for trial := 0; trial < 600; trial++ {
			// stride >= 8 mirrors the caller (frame width >= 16) and keeps a
			// vertical segment's 8-byte row from aliasing its neighbours.
			stride := 8 + rng.Intn(16)
			y := make([]byte, 8*stride+16)
			rng.Read(y)
			switch trial % 3 {
			case 0:
				// Flat-ish data so thresholds pass and taps actually run.
				base := byte(rng.Intn(256))
				for i := range y {
					y[i] = base + byte(rng.Intn(5))
				}
			case 1:
				// Step edge: large p/q gap exercises the clips.
				for i := range y {
					y[i] = byte(40 + rng.Intn(3))
					if i%stride >= 4 {
						y[i] = byte(200 + rng.Intn(3))
					}
				}
			}
			base := rng.Intn(4)
			alpha := thresholds[rng.Intn(len(thresholds))]
			beta := thresholds[rng.Intn(len(thresholds))]
			tc0 := int32(rng.Intn(26))
			strong := trial%2 == 1
			vertical := trial%4 < 2
			got := append([]byte(nil), y...)
			want := append([]byte(nil), y...)
			g0, gP, gQ := DeblockEdge4(got, base, stride, vertical, alpha, beta, tc0, strong)
			w0, wP, wQ := DeblockEdge4Ref(want, base, stride, vertical, alpha, beta, tc0, strong)
			if g0 != w0 || gP != wP || gQ != wQ {
				t.Fatalf("enabled=%v trial=%d v=%v strong=%v a=%d b=%d tc0=%d: masks got %04b/%04b/%04b want %04b/%04b/%04b",
					on, trial, vertical, strong, alpha, beta, tc0, g0, gP, gQ, w0, wP, wQ)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("enabled=%v trial=%d v=%v strong=%v a=%d b=%d tc0=%d: byte %d (row %d col %d) got %d want %d (orig %d)",
						on, trial, vertical, strong, alpha, beta, tc0, i, i/stride, i%stride, got[i], want[i], y[i])
				}
			}
		}
	})
}

//go:build amd64

package simd

// cpuHasAVX reports AVX support including OS-enabled YMM state.
func cpuHasAVX() bool

// available is the hardware gate for the vector backend on this
// architecture; the env-var/test override lives in `enabled`.
var available = cpuHasAVX()

//go:noescape
func axpy4AVX(dst, s0, s1, s2, s3 *float64, n int, a0, a1, a2, a3 float64)

//go:noescape
func adamAVX(w, grad, m, v *float64, n int, inv, b1, ib1, b2, ib2, c1, c2, lr, eps float64)

//go:noescape
func dotI8AVX(w, x *float64, n int, dst *float64)

//go:noescape
func lagDot8AVX(x, xk *float64, n int, dst *float64)

//go:noescape
func mulAVX(dst, src *float64, n int)

//go:noescape
func subScaledAVX(dst, x, y *float64, n int, c float64)

//go:noescape
func sqScaleAVX(dst *float64, n int, s float64)

//go:noescape
func cabsAVX(dst *float64, src *complex128, n int)

//go:noescape
func widenAVX(dst *complex128, src *float64, n int)

//go:noescape
func fftStageAVX(x *complex128, n, size int, tw *complex128)

//go:noescape
func fftStage2AVX(x *complex128, n int, w complex128)

//go:noescape
func sad4x4SSE(a *byte, astride int, b *byte, bstride int) int32

//go:noescape
func deblockEdge4HSSE(p *byte, stride int, alpha, beta, tc0, strong int32) uint32

//go:noescape
func deblockEdge4VSSE(p *byte, stride int, alpha, beta, tc0, strong int32) uint32

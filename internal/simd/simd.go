// Package simd is the shared, CPUID-gated vector-kernel backend for the
// repository's hot paths: the DSP feature pipeline (internal/dsp), the
// H.264 pixel kernels (internal/h264), and the neural-network GEMM/Adam
// primitives (internal/nn, whose AVX dispatch pattern this package
// generalizes).
//
// # Bit-exactness contract
//
// Every float kernel here vectorizes ACROSS INDEPENDENT OUTPUTS — the
// lane-per-output trick axpy4 established — never across a reduction.
// Each SIMD lane owns one output slot and accumulates that slot's sum in
// exactly the scalar order (ascending index, one IEEE-rounded multiply
// and one IEEE-rounded add per term, no FMA contraction). Vector
// VMULPD/VADDPD/VDIVPD/VSQRTPD are correctly rounded like their scalar
// forms, so results are Float64bits-identical to the portable Go loops.
// Integer kernels (SAD, deblock masks) are exactly associative, so any
// evaluation order is bit-exact by construction.
//
// Every kernel ships three forms: the exported dispatching wrapper, the
// AVX/SSE body (amd64 assembly, used when Enabled), and an exported
// *Ref scalar reference that doubles as the non-amd64/non-AVX fallback
// and as the oracle for the differential and fuzz tests. When the two
// disagree, the reference defines correct behavior.
//
// # Dispatch control
//
// Dispatch is decided by one package-level flag: the CPU must support
// AVX (including OS-enabled YMM state), and the AFFECTEDGE_NOSIMD
// environment variable must be unset (the `make test-noavx` hook that
// keeps the scalar fallback exercised on AVX machines). Tests may flip
// dispatch at runtime with SetEnabled; like nn's TrainConfig.ForceScalar
// it is a pure execution knob — results are identical either way.
package simd

import (
	"math"
	"math/cmplx"
	"os"
)

// enabled gates every kernel wrapper. Plain (non-atomic) on purpose,
// mirroring nn's useAVX: it is written only at init and by SetEnabled,
// which callers must not race with running kernels.
var enabled = available && os.Getenv("AFFECTEDGE_NOSIMD") == ""

// Available reports whether the CPU supports the vector backend
// (AVX with OS-enabled YMM state on amd64; false elsewhere).
func Available() bool { return available }

// Enabled reports whether kernels currently dispatch to the vector
// backend.
func Enabled() bool { return enabled }

// SetEnabled switches dispatch on or off and returns the previous
// setting. Enabling is a no-op on hosts without the backend. It is a
// test hook: do not call concurrently with running kernels.
func SetEnabled(on bool) bool {
	prev := enabled
	enabled = on && available
	return prev
}

// Axpy4 computes dst[i] += a0·s0[i] + a1·s1[i] + a2·s2[i] + a3·s3[i]
// (chained in that order per slot) over len(dst) elements.
func Axpy4(dst, s0, s1, s2, s3 []float64, a0, a1, a2, a3 float64) {
	n := len(dst)
	if enabled && n >= 4 {
		q := n &^ 3
		axpy4AVX(&dst[0], &s0[0], &s1[0], &s2[0], &s3[0], q, a0, a1, a2, a3)
		if q < n {
			Axpy4Ref(dst[q:], s0[q:], s1[q:], s2[q:], s3[q:], a0, a1, a2, a3)
		}
		return
	}
	Axpy4Ref(dst, s0, s1, s2, s3, a0, a1, a2, a3)
}

// Axpy4Ref is the portable Axpy4 body (also the amd64 tail handler).
func Axpy4Ref(dst, s0, s1, s2, s3 []float64, a0, a1, a2, a3 float64) {
	for i := range dst {
		s := dst[i]
		s += a0 * s0[i]
		s += a1 * s1[i]
		s += a2 * s2[i]
		s += a3 * s3[i]
		dst[i] = s
	}
}

// Adam applies one Adam update to a parameter slice; see AdamRef for the
// per-element formula the vector body reproduces bit for bit.
func Adam(w, grad, m, v []float64, inv, b1, b2, c1, c2, lr, eps float64) {
	n := len(w)
	if enabled && n >= 4 {
		q := n &^ 3
		adamAVX(&w[0], &grad[0], &m[0], &v[0], q, inv, b1, 1-b1, b2, 1-b2, c1, c2, lr, eps)
		if q < n {
			AdamRef(w[q:], grad[q:], m[q:], v[q:], inv, b1, b2, c1, c2, lr, eps)
		}
		return
	}
	AdamRef(w, grad, m, v, inv, b1, b2, c1, c2, lr, eps)
}

// AdamRef is the portable Adam body (also the amd64 tail handler). The
// vector backend performs the identical per-element operation sequence
// with IEEE-exact vector divides and square roots.
func AdamRef(w, grad, m, v []float64, inv, b1, b2, c1, c2, lr, eps float64) {
	for i := range w {
		g := grad[i] * inv
		m[i] = b1*m[i] + (1-b1)*g
		v[i] = b2*v[i] + (1-b2)*g*g
		mHat := m[i] / c1
		vHat := v[i] / c2
		w[i] -= lr * mHat / (math.Sqrt(vHat) + eps)
	}
}

// DotI8 computes eight interleaved dot products against a shared vector:
// dst[l] = Σ_k w[8k+l]·x[k] for l in [0,8), each lane accumulating in
// ascending k order. len(w) must be at least 8·len(x). This is the
// lane-per-output form of "eight filter rows × one spectrum": the mel
// filterbank and DCT-II kernels store their bases pre-interleaved so
// eight outputs share one pass over x.
func DotI8(dst *[8]float64, w, x []float64) {
	if enabled && len(x) > 0 {
		dotI8AVX(&w[0], &x[0], len(x), &dst[0])
		return
	}
	DotI8Ref(dst, w, x)
}

// DotI8Ref is the portable DotI8 body.
func DotI8Ref(dst *[8]float64, w, x []float64) {
	var s [8]float64
	for k, xv := range x {
		row := w[8*k : 8*k+8]
		s[0] += row[0] * xv
		s[1] += row[1] * xv
		s[2] += row[2] * xv
		s[3] += row[3] * xv
		s[4] += row[4] * xv
		s[5] += row[5] * xv
		s[6] += row[6] * xv
		s[7] += row[7] * xv
	}
	*dst = s
}

// LagDot8 computes eight autocorrelation lag sums of x at lags
// k..k+7: dst[l] = Σ_i x[i]·x[i+k+l] over all i with i+k+l < len(x),
// each lane in ascending i order (lags whose window is empty get 0).
// k must be >= 0.
func LagDot8(dst *[8]float64, x []float64, k int) {
	n := len(x)
	m := n - k - 7 // rows where all eight lanes are in range
	if enabled && m > 0 {
		var s [8]float64
		lagDot8AVX(&x[0], &x[k], m, &s[0])
		// Finish each lane's shorter tail in the same ascending order.
		for l := 0; l < 8; l++ {
			acc := s[l]
			for i := m; i+k+l < n; i++ {
				acc += x[i] * x[i+k+l]
			}
			dst[l] = acc
		}
		return
	}
	LagDot8Ref(dst, x, k)
}

// LagDot8Ref is the portable LagDot8 body.
func LagDot8Ref(dst *[8]float64, x []float64, k int) {
	n := len(x)
	for l := 0; l < 8; l++ {
		var s float64
		for i := 0; i+k+l < n; i++ {
			s += x[i] * x[i+k+l]
		}
		dst[l] = s
	}
}

// Mul multiplies dst element-wise by src: dst[i] *= src[i] over
// len(dst) elements. len(src) must be >= len(dst).
func Mul(dst, src []float64) {
	n := len(dst)
	if enabled && n >= 4 {
		q := n &^ 3
		mulAVX(&dst[0], &src[0], q)
		if q < n {
			MulRef(dst[q:], src[q:])
		}
		return
	}
	MulRef(dst, src)
}

// MulRef is the portable Mul body.
func MulRef(dst, src []float64) {
	for i := range dst {
		dst[i] *= src[i]
	}
}

// SubScaled computes dst[i] = x[i] - c·y[i] over len(dst) elements
// (multiply rounded first, then the subtract — the pre-emphasis filter
// shape). len(x) and len(y) must be >= len(dst); dst must not alias x
// or y at an offset (dst == x or dst == y exactly is fine: each slot
// reads its inputs before storing).
func SubScaled(dst, x, y []float64, c float64) {
	n := len(dst)
	if enabled && n >= 4 {
		q := n &^ 3
		subScaledAVX(&dst[0], &x[0], &y[0], q, c)
		if q < n {
			SubScaledRef(dst[q:], x[q:], y[q:], c)
		}
		return
	}
	SubScaledRef(dst, x, y, c)
}

// SubScaledRef is the portable SubScaled body.
func SubScaledRef(dst, x, y []float64, c float64) {
	for i := range dst {
		dst[i] = x[i] - c*y[i]
	}
}

// SqScale squares and scales in place: dst[i] = (dst[i]·dst[i])·s —
// the periodogram normalization, with the same rounding order.
func SqScale(dst []float64, s float64) {
	n := len(dst)
	if enabled && n >= 4 {
		q := n &^ 3
		sqScaleAVX(&dst[0], q, s)
		if q < n {
			SqScaleRef(dst[q:], s)
		}
		return
	}
	SqScaleRef(dst, s)
}

// SqScaleRef is the portable SqScale body.
func SqScaleRef(dst []float64, s float64) {
	for i, m := range dst {
		dst[i] = m * m * s
	}
}

// CAbs writes the complex magnitudes |src[i]| into dst over len(src)
// elements, matching math.Hypot (and therefore cmplx.Abs) bit for bit,
// including the ±Inf, NaN, and ±0 special cases. len(dst) must be >=
// len(src).
func CAbs(dst []float64, src []complex128) {
	n := len(src)
	if enabled && n >= 4 {
		q := n &^ 3
		cabsAVX(&dst[0], &src[0], q)
		if q < n {
			CAbsRef(dst[q:], src[q:])
		}
		return
	}
	CAbsRef(dst, src)
}

// CAbsRef is the portable CAbs body.
func CAbsRef(dst []float64, src []complex128) {
	for i, z := range src {
		dst[i] = cmplx.Abs(z)
	}
}

// Widen writes dst[i] = complex(src[i], 0) over len(src) elements —
// the real-to-complex copy in front of the FFT. len(dst) must be >=
// len(src).
func Widen(dst []complex128, src []float64) {
	n := len(src)
	if enabled && n >= 4 {
		q := n &^ 3
		widenAVX(&dst[0], &src[0], q)
		if q < n {
			WidenRef(dst[q:], src[q:])
		}
		return
	}
	WidenRef(dst, src)
}

// WidenRef is the portable Widen body.
func WidenRef(dst []complex128, src []float64) {
	for i, v := range src {
		dst[i] = complex(v, 0)
	}
}

// FFTStage runs one radix-2 decimation-in-time butterfly stage over x:
// for every size-aligned group, b := x[g+k+half]·tw[k]; x[g+k],
// x[g+k+half] = a+b, a-b for k in [0, half). size must be a power of
// two >= 4 dividing len(x), and len(tw) must be >= half = size/2. The
// vector body performs the naive complex multiply (two rounded products
// per component, one rounded add/sub) — the exact arithmetic the Go
// compiler emits for complex128 multiplication — two butterflies per
// register, so every butterfly is bit-identical to FFTStageRef.
func FFTStage(x []complex128, size int, tw []complex128) {
	if enabled && len(x) >= size {
		// half = size/2 is even for every size >= 4, so the vector body
		// covers whole stages with no scalar tail.
		fftStageAVX(&x[0], len(x), size, &tw[0])
		return
	}
	FFTStageRef(x, size, tw)
}

// FFTStageRef is the portable FFTStage body.
func FFTStageRef(x []complex128, size int, tw []complex128) {
	half := size / 2
	for start := 0; start+size <= len(x); start += size {
		for k := 0; k < half; k++ {
			a := x[start+k]
			b := x[start+k+half] * tw[k]
			x[start+k] = a + b
			x[start+k+half] = a - b
		}
	}
}

// FFTStage2 runs the size-2 butterfly stage: for every adjacent pair,
// b := x[2g+1]·w; x[2g], x[2g+1] = a+b, a-b. The multiply by w is
// performed even when w == 1, matching the general stage arithmetic.
// len(x) must be even.
func FFTStage2(x []complex128, w complex128) {
	nb := len(x) / 2
	q := 0
	if enabled && nb >= 2 {
		q = nb &^ 1
		fftStage2AVX(&x[0], q, w)
	}
	for g := q; g < nb; g++ {
		a := x[2*g]
		b := x[2*g+1] * w
		x[2*g] = a + b
		x[2*g+1] = a - b
	}
}

// FFTStage2Ref is the portable FFTStage2 body.
func FFTStage2Ref(x []complex128, w complex128) {
	nb := len(x) / 2
	for g := 0; g < nb; g++ {
		a := x[2*g]
		b := x[2*g+1] * w
		x[2*g] = a + b
		x[2*g+1] = a - b
	}
}

// SAD4x4 returns the sum of absolute differences between two 4x4 byte
// blocks: rows a[r·astride : r·astride+4] against b[r·bstride :
// r·bstride+4] for r in [0,4). Integer addition is exact, so the packed
// PSADBW reduction is bit-identical to the scalar loop. The caller must
// guarantee all four rows are in bounds (3·stride+4 <= len).
func SAD4x4(a []byte, astride int, b []byte, bstride int) int32 {
	if enabled {
		_ = a[3*astride+3]
		_ = b[3*bstride+3]
		return sad4x4SSE(&a[0], astride, &b[0], bstride)
	}
	return SAD4x4Ref(a, astride, b, bstride)
}

// SAD4x4Ref is the portable SAD4x4 body.
func SAD4x4Ref(a []byte, astride int, b []byte, bstride int) int32 {
	var sad int32
	for r := 0; r < 4; r++ {
		ar := a[r*astride : r*astride+4]
		br := b[r*bstride : r*bstride+4]
		for c := 0; c < 4; c++ {
			d := int32(ar[c]) - int32(br[c])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// DeblockEdge4 applies the H.264 in-loop luma deblocking filter to all
// four segments of one 4-sample edge in y, in place. The sample layout
// is fixed by the caller-supplied base:
//
//   - vertical edge: segment i reads the eight contiguous bytes
//     [p3 p2 p1 p0 q0 q1 q2 q3] at y[base+i·stride .. base+i·stride+8)
//   - horizontal edge: row k = y[base+k·stride .. base+k·stride+4)
//     holds p3..q3 for k = 0..7, and segment i is column i
//
// alpha and beta must be in [1, 255] (the caller screens the zero
// thresholds, under which nothing can filter). For bS < 4, strong is
// false and tc0 is the spec's clipping bound; for bS == 4, strong is
// true and tc0 is ignored. The returned masks drive the caller's
// filter statistics: bit i of m0 is segment i's filterSamplesFlag (p0
// and q0 written), and mP/mQ flag the extra p-side/q-side writes (one
// sample each for the normal filter, two for the strong one).
//
// Every tap is integer arithmetic, so the packed kernel is
// bit-identical to the scalar reference; segments write only their own
// row (vertical) or column (horizontal) and never feed another
// segment's reads, so evaluating all four at once matches the
// reference's sequential order exactly.
func DeblockEdge4(y []byte, base, stride int, vertical bool, alpha, beta, tc0 int32, strong bool) (m0, mP, mQ uint8) {
	if enabled {
		s := int32(0)
		if strong {
			s = 1
		}
		var m uint32
		if vertical {
			_ = y[base+3*stride+7]
			m = deblockEdge4VSSE(&y[base], stride, alpha, beta, tc0, s)
		} else {
			_ = y[base+7*stride+3]
			m = deblockEdge4HSSE(&y[base], stride, alpha, beta, tc0, s)
		}
		return uint8(m), uint8(m >> 8), uint8(m >> 16)
	}
	return DeblockEdge4Ref(y, base, stride, vertical, alpha, beta, tc0, strong)
}

// DeblockEdge4Ref is the portable DeblockEdge4 body: the spec's
// per-segment filter, verbatim.
func DeblockEdge4Ref(y []byte, base, stride int, vertical bool, alpha, beta, tc0 int32, strong bool) (m0, mP, mQ uint8) {
	for i := 0; i < 4; i++ {
		var p0idx, step int
		if vertical {
			p0idx = base + i*stride + 3
			step = 1
		} else {
			p0idx = base + 3*stride + i
			step = stride
		}
		q0idx := p0idx + step
		var p, q [4]int32
		for d := 0; d < 4; d++ {
			p[d] = int32(y[p0idx-d*step])
			q[d] = int32(y[q0idx+d*step])
		}
		if absI32(p[0]-q[0]) >= alpha || absI32(p[1]-p[0]) >= beta || absI32(q[1]-q[0]) >= beta {
			continue
		}
		m0 |= 1 << i
		ap := absI32(p[2]-p[0]) < beta
		aq := absI32(q[2]-q[0]) < beta
		if !strong {
			tc := tc0
			if ap {
				tc++
			}
			if aq {
				tc++
			}
			delta := clip3i(-tc, tc, ((q[0]-p[0])<<2+(p[1]-q[1])+4)>>3)
			y[p0idx] = clampByte(p[0] + delta)
			y[q0idx] = clampByte(q[0] - delta)
			if ap {
				dp := clip3i(-tc0, tc0, (p[2]+((p[0]+q[0]+1)>>1)-(p[1]<<1))>>1)
				y[p0idx-step] = clampByte(p[1] + dp)
				mP |= 1 << i
			}
			if aq {
				dq := clip3i(-tc0, tc0, (q[2]+((p[0]+q[0]+1)>>1)-(q[1]<<1))>>1)
				y[q0idx+step] = clampByte(q[1] + dq)
				mQ |= 1 << i
			}
			continue
		}
		// Strong filter (bS == 4).
		if absI32(p[0]-q[0]) < (alpha>>2)+2 {
			if ap {
				y[p0idx] = clampByte((p[2] + 2*p[1] + 2*p[0] + 2*q[0] + q[1] + 4) >> 3)
				y[p0idx-step] = clampByte((p[2] + p[1] + p[0] + q[0] + 2) >> 2)
				y[p0idx-2*step] = clampByte((2*p[3] + 3*p[2] + p[1] + p[0] + q[0] + 4) >> 3)
				mP |= 1 << i
			} else {
				y[p0idx] = clampByte((2*p[1] + p[0] + q[1] + 2) >> 2)
			}
			if aq {
				y[q0idx] = clampByte((q[2] + 2*q[1] + 2*q[0] + 2*p[0] + p[1] + 4) >> 3)
				y[q0idx+step] = clampByte((q[2] + q[1] + q[0] + p[0] + 2) >> 2)
				y[q0idx+2*step] = clampByte((2*q[3] + 3*q[2] + q[1] + q[0] + p[0] + 4) >> 3)
				mQ |= 1 << i
			} else {
				y[q0idx] = clampByte((2*q[1] + q[0] + p[1] + 2) >> 2)
			}
		} else {
			y[p0idx] = clampByte((2*p[1] + p[0] + q[1] + 2) >> 2)
			y[q0idx] = clampByte((2*q[1] + q[0] + p[1] + 2) >> 2)
		}
	}
	return
}

func absI32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func clip3i(lo, hi, v int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampByte(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

//go:build amd64

#include "textflag.h"

// H.264 luma deblocking edge kernels. Dword-lane layout throughout:
// X0..X7 hold p3 p2 p1 p0 q0 q1 q2 q3 with lane l = segment l (row l of
// a vertical edge, column l of a horizontal one). Every tap is integer
// arithmetic on widened bytes, so results are bit-identical to the
// scalar reference; PACKSSLW+PACKUSWB performs the final clampU8
// exactly. SSE4.1 ops (PMOVZXBD, PMINSD/PMAXSD, PBLENDVB) are safe
// here: the dispatch gate requires AVX, which implies SSE4.1.

// Broadcast a 32-bit stack argument into all four lanes of xr.
#define DBK_BCAST(arg, xr) \
	MOVL   arg, xr        \
	PSHUFD $0x00, xr, xr

// filterSamplesFlag per lane: X12 = (|p0-q0| < alpha) & (|p1-p0| < beta)
// & (|q1-q0| < beta), lane bits mirrored into AX for the early exit.
// Needs alpha in X8, beta in X9; clobbers X10, X11.
#define DBK_M0 \
	MOVOA    X3, X10   \
	PSUBL    X4, X10   \
	PABSD    X10, X10  \
	MOVOA    X8, X12   \
	PCMPGTL  X10, X12  \
	MOVOA    X2, X10   \
	PSUBL    X3, X10   \
	PABSD    X10, X10  \
	MOVOA    X9, X11   \
	PCMPGTL  X10, X11  \
	PAND     X11, X12  \
	MOVOA    X5, X10   \
	PSUBL    X4, X10   \
	PABSD    X10, X10  \
	MOVOA    X9, X11   \
	PCMPGTL  X10, X11  \
	PAND     X11, X12  \
	MOVMSKPS X12, AX

// X13 = ap = |p2-p0| < beta, X14 = aq = |q2-q0| < beta; clobbers X10.
#define DBK_APAQ \
	MOVOA   X1, X10  \
	PSUBL   X3, X10  \
	PABSD   X10, X10 \
	MOVOA   X9, X13  \
	PCMPGTL X10, X13 \
	MOVOA   X6, X10  \
	PSUBL   X4, X10  \
	PABSD   X10, X10 \
	MOVOA   X9, X14  \
	PCMPGTL X10, X14

// Normal (bS < 4) filter: delta/dp/dq with tc clipping, exactly the
// scalar tap order. Leaves byte-packed new values p1n=X1, p0n=X11,
// q0n=X7, q1n=X3; byte-packed write masks m0=X12, mP=X13, mQ=X14; and
// their lane bits in R8/R9/R10. p3 (X0) and q3 (X7) are dead on entry.
#define DBK_NORMAL \
	PCMPEQL  X0, X0          \ // all ones
	PSRLL    $31, X0         \ // lane 1
	PSLLL    $2, X0          \ // lane 4
	MOVOA    X4, X10         \
	PSUBL    X3, X10         \ // q0-p0
	PSLLL    $2, X10         \
	MOVOA    X2, X7          \
	PSUBL    X5, X7          \ // p1-q1
	PADDL    X7, X10         \
	PADDL    X0, X10         \
	PSRAL    $3, X10         \ // raw delta
	MOVL     tc0+24(FP), X11 \
	PSHUFD   $0x00, X11, X11 \
	MOVOA    X11, X15        \ // tc0 kept for dp/dq clips
	PSUBL    X13, X11        \ // tc += 1 where ap
	PSUBL    X14, X11        \ // tc += 1 where aq
	PMINSD   X11, X10        \
	PXOR     X7, X7          \
	PSUBL    X11, X7         \ // -tc
	PMAXSD   X7, X10         \ // delta = clip3(-tc, tc, raw)
	MOVOA    X3, X11         \
	PADDL    X10, X11        \ // p0n
	MOVOA    X4, X7          \
	PSUBL    X10, X7         \ // q0n
	MOVOA    X3, X10         \
	PADDL    X4, X10         \
	PSRLL    $2, X0          \ // lane 1
	PADDL    X0, X10         \
	PSRAL    $1, X10         \ // avg = (p0+q0+1)>>1
	MOVOA    X1, X3          \
	PADDL    X10, X3         \
	MOVOA    X2, X4          \
	PSLLL    $1, X4          \
	PSUBL    X4, X3          \
	PSRAL    $1, X3          \ // raw dp
	PMINSD   X15, X3         \
	PXOR     X4, X4          \
	PSUBL    X15, X4         \ // -tc0
	PMAXSD   X4, X3          \ // dp = clip3(-tc0, tc0, raw)
	MOVOA    X2, X1          \
	PADDL    X3, X1          \ // p1n
	MOVOA    X6, X2          \
	PADDL    X10, X2         \
	MOVOA    X5, X3          \
	PSLLL    $1, X3          \
	PSUBL    X3, X2          \
	PSRAL    $1, X2          \ // raw dq
	PMINSD   X15, X2         \
	PXOR     X3, X3          \
	PSUBL    X15, X3         \
	PMAXSD   X3, X2          \ // dq
	MOVOA    X5, X3          \
	PADDL    X2, X3          \ // q1n
	PAND     X12, X13        \ // mP = m0 & ap
	PAND     X12, X14        \ // mQ = m0 & aq
	MOVMSKPS X12, R8         \
	MOVMSKPS X13, R9         \
	MOVMSKPS X14, R10        \
	PACKSSLW X1, X1          \
	PACKUSWB X1, X1          \
	PACKSSLW X11, X11        \
	PACKUSWB X11, X11        \
	PACKSSLW X7, X7          \
	PACKUSWB X7, X7          \
	PACKSSLW X3, X3          \
	PACKUSWB X3, X3          \
	PACKSSLW X12, X12        \
	PACKSSWB X12, X12        \
	PACKSSLW X13, X13        \
	PACKSSWB X13, X13        \
	PACKSSLW X14, X14        \
	PACKSSWB X14, X14

// Strong (bS == 4) filter. Leaves byte-packed p2n=X2, p1n=X1, p0n=X8,
// q0n=X9, q1n=X6, q2n=X5; byte-packed masks m0=X12, mP=X13, mQ=X14
// (mP/mQ pre-ANDed with m0 and the |p0-q0| < (alpha>>2)+2 gate); lane
// bits in R8/R9/R10. Spills p3/q3 to the 32-byte frame.
#define DBK_STRONG \
	MOVOU    X0, 0(SP)   \
	MOVOU    X7, 16(SP)  \
	PCMPEQL  X15, X15    \
	PSRLL    $31, X15    \
	PSLLL    $1, X15     \ // lane 2
	MOVOA    X8, X10     \
	PSRLL    $2, X10     \
	PADDL    X15, X10    \ // (alpha>>2)+2
	MOVOA    X3, X11     \
	PSUBL    X4, X11     \
	PABSD    X11, X11    \
	PCMPGTL  X11, X10    \ // aStrong
	PAND     X12, X13    \
	PAND     X10, X13    \ // mP = m0 & aStrong & ap
	PAND     X12, X14    \
	PAND     X10, X14    \ // mQ = m0 & aStrong & aq
	MOVOA    X3, X10     \
	PADDL    X4, X10     \ // A = p0+q0
	MOVOA    X2, X8      \
	PSLLL    $1, X8      \
	PADDL    X3, X8      \
	PADDL    X5, X8      \
	PADDL    X15, X8     \
	PSRAL    $2, X8      \ // weak p0 = (2p1+p0+q1+2)>>2
	MOVOA    X5, X9      \
	PSLLL    $1, X9      \
	PADDL    X4, X9      \
	PADDL    X2, X9      \
	PADDL    X15, X9     \
	PSRAL    $2, X9      \ // weak q0
	MOVOA    X2, X11     \
	PSLLL    $1, X11     \
	PADDL    X1, X11     \
	PADDL    X10, X11    \
	PADDL    X10, X11    \
	PADDL    X5, X11     \
	PADDL    X15, X11    \
	PADDL    X15, X11    \
	PSRAL    $3, X11     \ // strong p0 = (p2+2p1+2A+q1+4)>>3
	MOVOA    X13, X0     \
	PBLENDVB X0, X11, X8     \ // p0n: strong where mP
	MOVOA    X5, X11     \
	PSLLL    $1, X11     \
	PADDL    X6, X11     \
	PADDL    X10, X11    \
	PADDL    X10, X11    \
	PADDL    X2, X11     \
	PADDL    X15, X11    \
	PADDL    X15, X11    \
	PSRAL    $3, X11     \ // strong q0
	MOVOA    X14, X0     \
	PBLENDVB X0, X11, X9     \ // q0n
	MOVOU    0(SP), X11  \
	PSLLL    $1, X11     \
	PADDL    X1, X11     \
	PADDL    X1, X11     \
	PADDL    X1, X11     \
	PADDL    X2, X11     \
	PADDL    X10, X11    \
	PADDL    X15, X11    \
	PADDL    X15, X11    \
	PSRAL    $3, X11     \ // p2n = (2p3+3p2+p1+A+4)>>3
	MOVOU    X11, 0(SP)  \
	MOVOU    16(SP), X11 \
	PSLLL    $1, X11     \
	PADDL    X6, X11     \
	PADDL    X6, X11     \
	PADDL    X6, X11     \
	PADDL    X5, X11     \
	PADDL    X10, X11    \
	PADDL    X15, X11    \
	PADDL    X15, X11    \
	PSRAL    $3, X11     \ // q2n
	MOVOU    X11, 16(SP) \
	MOVOA    X1, X11     \
	PADDL    X2, X11     \
	PADDL    X10, X11    \
	PADDL    X15, X11    \
	PSRAL    $2, X11     \
	MOVOA    X11, X1     \ // p1n = (p2+p1+A+2)>>2
	MOVOA    X6, X11     \
	PADDL    X5, X11     \
	PADDL    X10, X11    \
	PADDL    X15, X11    \
	PSRAL    $2, X11     \
	MOVOA    X11, X6     \ // q1n = (q2+q1+A+2)>>2
	MOVMSKPS X12, R8     \
	MOVMSKPS X13, R9     \
	MOVMSKPS X14, R10    \
	MOVOU    0(SP), X2   \
	MOVOU    16(SP), X5  \
	PACKSSLW X2, X2      \
	PACKUSWB X2, X2      \
	PACKSSLW X1, X1      \
	PACKUSWB X1, X1      \
	PACKSSLW X8, X8      \
	PACKUSWB X8, X8      \
	PACKSSLW X9, X9      \
	PACKUSWB X9, X9      \
	PACKSSLW X6, X6      \
	PACKUSWB X6, X6      \
	PACKSSLW X5, X5      \
	PACKUSWB X5, X5      \
	PACKSSLW X12, X12    \
	PACKSSWB X12, X12    \
	PACKSSLW X13, X13    \
	PACKSSWB X13, X13    \
	PACKSSLW X14, X14    \
	PACKSSWB X14, X14

// Transpose eight byte-packed 4-byte columns (byte j of column c = row
// j) into full rows: r01 = rows 0,1 (8 bytes each in low/high qwords),
// r23 = rows 2,3. t0/t1/r01/r23 must be distinct from every c input.
#define DBK_TRANS(c0, c1, c2, c3, c4, c5, c6, c7, t0, t1, r01, r23) \
	MOVOA     c0, r01  \
	PUNPCKLBW c1, r01  \
	MOVOA     c2, t0   \
	PUNPCKLBW c3, t0   \
	PUNPCKLWL t0, r01  \ // cols 0-3 by row
	MOVOA     c4, t1   \
	PUNPCKLBW c5, t1   \
	MOVOA     c6, r23  \
	PUNPCKLBW c7, r23  \
	PUNPCKLWL r23, t1  \ // cols 4-7 by row
	MOVOA     r01, r23 \
	PUNPCKLLQ t1, r01  \ // rows 0,1
	PUNPCKHLQ t1, r23  \ // rows 2,3

// Masked store of four 8-byte rows at DI + i*stride: v01/v23 hold the
// transposed replacement rows, m01/m23 the transposed byte masks
// (zero mask bytes keep the original sample). Clobbers X0, X1, X3, R11.
#define DBK_VSTORE(v01, v23, m01, m23) \
	MOVQ     (DI), X3          \
	MOVOA    m01, X0           \
	PBLENDVB X0, v01, X3           \
	MOVQ     X3, (DI)          \
	PSHUFD   $0x4E, m01, X0    \
	PSHUFD   $0x4E, v01, X1    \
	MOVQ     (DI)(DX*1), X3    \
	PBLENDVB X0, X1, X3            \
	MOVQ     X3, (DI)(DX*1)    \
	LEAQ     (DI)(DX*2), R11   \
	MOVQ     (R11), X3         \
	MOVOA    m23, X0           \
	PBLENDVB X0, v23, X3           \
	MOVQ     X3, (R11)         \
	PSHUFD   $0x4E, m23, X0    \
	PSHUFD   $0x4E, v23, X1    \
	MOVQ     (R11)(DX*1), X3   \
	PBLENDVB X0, X1, X3            \
	MOVQ     X3, (R11)(DX*1)

// Pack the three lane-bit groups into the uint32 result.
#define DBK_RET \
	SHLL $8, R9          \
	SHLL $16, R10        \
	ORL  R9, R8          \
	ORL  R10, R8         \
	MOVL R8, ret+32(FP)  \
	RET

// func deblockEdge4HSSE(p *byte, stride int, alpha, beta, tc0, strong int32) uint32
//
// Horizontal edge: rows p + k*stride (k = 0..7) hold p3..q3, 4 bytes
// wide; lane l = column l. New samples are blended into the 4-byte rows
// under the per-column write masks, so unfiltered columns keep their
// original bytes and the write set matches the scalar filter exactly.
TEXT ·deblockEdge4HSSE(SB), NOSPLIT, $32-36
	MOVQ     p+0(FP), DI
	MOVQ     stride+8(FP), DX
	MOVQ     DI, SI
	PMOVZXBD (SI), X0
	ADDQ     DX, SI
	PMOVZXBD (SI), X1
	ADDQ     DX, SI
	PMOVZXBD (SI), X2
	ADDQ     DX, SI
	PMOVZXBD (SI), X3
	ADDQ     DX, SI
	PMOVZXBD (SI), X4
	ADDQ     DX, SI
	PMOVZXBD (SI), X5
	ADDQ     DX, SI
	PMOVZXBD (SI), X6
	ADDQ     DX, SI
	PMOVZXBD (SI), X7
	DBK_BCAST(alpha+16(FP), X8)
	DBK_BCAST(beta+20(FP), X9)
	DBK_M0
	TESTL    AX, AX
	JZ       hzero
	DBK_APAQ
	MOVL     strong+28(FP), BX
	TESTL    BX, BX
	JNZ      hstrong
	DBK_NORMAL

	// Rows p1 p0 q0 q1 = p + (2..5)*stride.
	LEAQ     (DI)(DX*2), DI
	MOVL     (DI), X2
	MOVOA    X13, X0
	PBLENDVB X0, X1, X2
	MOVL     X2, (DI)
	ADDQ     DX, DI
	MOVL     (DI), X2
	MOVOA    X12, X0
	PBLENDVB X0, X11, X2
	MOVL     X2, (DI)
	ADDQ     DX, DI
	MOVL     (DI), X2
	PBLENDVB X0, X7, X2
	MOVL     X2, (DI)
	ADDQ     DX, DI
	MOVL     (DI), X2
	MOVOA    X14, X0
	PBLENDVB X0, X3, X2
	MOVL     X2, (DI)
	DBK_RET

hstrong:
	DBK_STRONG

	// Rows p2 p1 p0 q0 q1 q2 = p + (1..6)*stride.
	ADDQ     DX, DI
	MOVL     (DI), X3
	MOVOA    X13, X0
	PBLENDVB X0, X2, X3
	MOVL     X3, (DI)
	ADDQ     DX, DI
	MOVL     (DI), X3
	PBLENDVB X0, X1, X3
	MOVL     X3, (DI)
	ADDQ     DX, DI
	MOVL     (DI), X3
	MOVOA    X12, X0
	PBLENDVB X0, X8, X3
	MOVL     X3, (DI)
	ADDQ     DX, DI
	MOVL     (DI), X3
	PBLENDVB X0, X9, X3
	MOVL     X3, (DI)
	ADDQ     DX, DI
	MOVL     (DI), X3
	MOVOA    X14, X0
	PBLENDVB X0, X6, X3
	MOVL     X3, (DI)
	ADDQ     DX, DI
	MOVL     (DI), X3
	PBLENDVB X0, X5, X3
	MOVL     X3, (DI)
	DBK_RET

hzero:
	MOVL $0, ret+32(FP)
	RET

// func deblockEdge4VSSE(p *byte, stride int, alpha, beta, tc0, strong int32) uint32
//
// Vertical edge: row i = p + i*stride holds the eight contiguous bytes
// p3..q3 of segment i. The rows are transposed to the dword-lane
// layout, filtered by the shared macros, and the new samples are
// transposed back and blended into 8-byte row stores (mask columns for
// p3/q3 are zero, so those bytes always keep their original values).
TEXT ·deblockEdge4VSSE(SB), NOSPLIT, $32-36
	MOVQ      p+0(FP), DI
	MOVQ      stride+8(FP), DX
	MOVQ      (DI), X0
	MOVQ      (DI)(DX*1), X1
	LEAQ      (DI)(DX*2), R11
	MOVQ      (R11), X2
	MOVQ      (R11)(DX*1), X3
	PUNPCKLBW X1, X0          // rows 0,1 interleaved
	PUNPCKLBW X3, X2          // rows 2,3 interleaved
	MOVOA     X0, X4
	PUNPCKLWL X2, X0          // cols 0-3, 4 bytes each
	PUNPCKHWL X2, X4          // cols 4-7
	MOVOA     X0, X11
	MOVOA     X4, X10
	PMOVZXBD  X11, X0         // p3
	PSRLDQ    $4, X11
	PMOVZXBD  X11, X1         // p2
	PSRLDQ    $4, X11
	PMOVZXBD  X11, X2         // p1
	PSRLDQ    $4, X11
	PMOVZXBD  X11, X3         // p0
	PMOVZXBD  X10, X4         // q0
	PSRLDQ    $4, X10
	PMOVZXBD  X10, X5         // q1
	PSRLDQ    $4, X10
	PMOVZXBD  X10, X6         // q2
	PSRLDQ    $4, X10
	PMOVZXBD  X10, X7         // q3
	DBK_BCAST(alpha+16(FP), X8)
	DBK_BCAST(beta+20(FP), X9)
	DBK_M0
	TESTL     AX, AX
	JZ        vzero
	DBK_APAQ
	MOVL      strong+28(FP), BX
	TESTL     BX, BX
	JNZ       vstrong
	DBK_NORMAL

	// Columns [0 0 p1n p0n q0n q1n 0 0], masks [0 0 mP m0 m0 mQ 0 0].
	PXOR      X15, X15
	DBK_TRANS(X15, X15, X1, X11, X7, X3, X15, X15, X2, X4, X5, X6)
	DBK_TRANS(X15, X15, X13, X12, X12, X14, X15, X15, X2, X4, X8, X9)
	DBK_VSTORE(X5, X6, X8, X9)
	DBK_RET

vstrong:
	DBK_STRONG

	// Columns [0 p2n p1n p0n q0n q1n q2n 0], masks [0 mP mP m0 m0 mQ mQ 0].
	PXOR      X15, X15
	DBK_TRANS(X15, X2, X1, X8, X9, X6, X5, X15, X3, X4, X7, X10)
	DBK_TRANS(X15, X13, X13, X12, X12, X14, X14, X15, X3, X4, X11, X2)
	DBK_VSTORE(X7, X10, X11, X2)
	DBK_RET

vzero:
	MOVL $0, ret+32(FP)
	RET

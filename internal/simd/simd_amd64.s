//go:build amd64

#include "textflag.h"

// Shared vector backend. Float kernels follow the lane-per-output rule:
// each SIMD lane owns one output slot and performs that slot's scalar
// operation chain in unchanged order, with every VMULPD/VADDPD rounded
// separately (no FMA), so results match the portable Go loops bit for
// bit. Integer kernels (SAD, edge masks) are exactly associative.

// func cpuHasAVX() bool
//
// AVX requires the CPUID AVX + OSXSAVE bits and YMM state enabled in
// XCR0 (XGETBV).
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVQ  $1, AX
	CPUID
	MOVL  CX, BX
	ANDL  $(1<<27 | 1<<28), BX // OSXSAVE | AVX
	CMPL  BX, $(1<<27 | 1<<28)
	JNE   no
	MOVL  $0, CX
	XGETBV
	ANDL  $6, AX               // XMM | YMM state
	CMPL  AX, $6
	JNE   no
	MOVB  $1, ret+0(FP)
	RET
no:
	MOVB  $0, ret+0(FP)
	RET

// func axpy4AVX(dst, s0, s1, s2, s3 *float64, n int, a0, a1, a2, a3 float64)
//
// dst[i] += a0*s0[i]; += a1*s1[i]; += a2*s2[i]; += a3*s3[i] for i < n
// (n must be a multiple of 4). Each VMULPD/VADDPD pair rounds separately,
// reproducing the scalar chain bit for bit in every lane.
TEXT ·axpy4AVX(SB), NOSPLIT, $0-80
	MOVQ         dst+0(FP), DI
	MOVQ         s0+8(FP), SI
	MOVQ         s1+16(FP), R8
	MOVQ         s2+24(FP), R9
	MOVQ         s3+32(FP), R10
	MOVQ         n+40(FP), DX
	VBROADCASTSD a0+48(FP), Y4
	VBROADCASTSD a1+56(FP), Y5
	VBROADCASTSD a2+64(FP), Y6
	VBROADCASTSD a3+72(FP), Y7
	XORQ         BX, BX
	SHRQ         $2, DX
	JZ           done
loop:
	VMOVUPD (DI)(BX*1), Y0
	VMOVUPD (SI)(BX*1), Y1
	VMULPD  Y4, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R8)(BX*1), Y2
	VMULPD  Y5, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD (R9)(BX*1), Y3
	VMULPD  Y6, Y3, Y3
	VADDPD  Y3, Y0, Y0
	VMOVUPD (R10)(BX*1), Y1
	VMULPD  Y7, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)(BX*1)
	ADDQ    $32, BX
	DECQ    DX
	JNZ     loop
done:
	VZEROUPPER
	RET

// func adamAVX(w, grad, m, v *float64, n int, inv, b1, ib1, b2, ib2, c1, c2, lr, eps float64)
//
// Four-wide Adam update (n must be a multiple of 4), per element:
//
//	gs := g[i]*inv
//	m[i] = b1*m[i] + ib1*gs
//	v[i] = b2*v[i] + (ib2*gs)*gs
//	w[i] -= lr*(m[i]/c1) / (sqrt(v[i]/c2) + eps)
//
// VDIVPD/VSQRTPD are IEEE correctly rounded like their scalar forms, so
// every lane matches the scalar update bit for bit.
TEXT ·adamAVX(SB), NOSPLIT, $0-112
	MOVQ         w+0(FP), DI
	MOVQ         grad+8(FP), SI
	MOVQ         m+16(FP), R8
	MOVQ         v+24(FP), R9
	MOVQ         n+32(FP), DX
	VBROADCASTSD inv+40(FP), Y7
	VBROADCASTSD b1+48(FP), Y8
	VBROADCASTSD ib1+56(FP), Y9
	VBROADCASTSD b2+64(FP), Y10
	VBROADCASTSD ib2+72(FP), Y11
	VBROADCASTSD c1+80(FP), Y12
	VBROADCASTSD c2+88(FP), Y13
	VBROADCASTSD lr+96(FP), Y14
	VBROADCASTSD eps+104(FP), Y15
	XORQ         BX, BX
	SHRQ         $2, DX
	JZ           adone
aloop:
	VMOVUPD (SI)(BX*1), Y0     // grad
	VMULPD  Y7, Y0, Y0         // gs = grad*inv
	VMOVUPD (R8)(BX*1), Y1     // m
	VMULPD  Y8, Y1, Y1         // b1*m
	VMULPD  Y9, Y0, Y2         // ib1*gs
	VADDPD  Y2, Y1, Y1         // m' = b1*m + ib1*gs
	VMOVUPD Y1, (R8)(BX*1)
	VMOVUPD (R9)(BX*1), Y3     // v
	VMULPD  Y10, Y3, Y3        // b2*v
	VMULPD  Y11, Y0, Y4        // ib2*gs
	VMULPD  Y0, Y4, Y4         // (ib2*gs)*gs
	VADDPD  Y4, Y3, Y3         // v' = b2*v + (ib2*gs)*gs
	VMOVUPD Y3, (R9)(BX*1)
	VDIVPD  Y12, Y1, Y1        // mHat = m'/c1
	VDIVPD  Y13, Y3, Y3        // vHat = v'/c2
	VSQRTPD Y3, Y3
	VADDPD  Y15, Y3, Y3        // sqrt(vHat) + eps
	VMULPD  Y14, Y1, Y1        // lr*mHat
	VDIVPD  Y3, Y1, Y1         // delta
	VMOVUPD (DI)(BX*1), Y5
	VSUBPD  Y1, Y5, Y5         // w - delta
	VMOVUPD Y5, (DI)(BX*1)
	ADDQ    $32, BX
	DECQ    DX
	JNZ     aloop
adone:
	VZEROUPPER
	RET

// func dotI8AVX(w, x *float64, n int, dst *float64)
//
// Eight interleaved dot products: dst[l] = sum_k w[8k+l]*x[k] for k < n,
// each lane accumulating in ascending k order. Two independent 4-lane
// accumulator chains hide the VADDPD latency that a single chain would
// serialize on.
TEXT ·dotI8AVX(SB), NOSPLIT, $0-32
	MOVQ   w+0(FP), SI
	MOVQ   x+8(FP), DI
	MOVQ   n+16(FP), DX
	MOVQ   dst+24(FP), R8
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	XORQ   BX, BX
	TESTQ  DX, DX
	JZ     dstore
dloop:
	VBROADCASTSD (DI)(BX*8), Y2
	VMOVUPD      (SI), Y3
	VMULPD       Y2, Y3, Y3
	VADDPD       Y3, Y0, Y0
	VMOVUPD      32(SI), Y4
	VMULPD       Y2, Y4, Y4
	VADDPD       Y4, Y1, Y1
	ADDQ         $64, SI
	INCQ         BX
	CMPQ         BX, DX
	JLT          dloop
dstore:
	VMOVUPD Y0, (R8)
	VMOVUPD Y1, 32(R8)
	VZEROUPPER
	RET

// func lagDot8AVX(x, xk *float64, n int, dst *float64)
//
// Eight lag sums: dst[l] = sum_i x[i]*xk[i+l] for i < n, ascending i
// per lane. xk points k elements past x, so lane l computes lag k+l.
TEXT ·lagDot8AVX(SB), NOSPLIT, $0-32
	MOVQ   x+0(FP), SI
	MOVQ   xk+8(FP), DI
	MOVQ   n+16(FP), DX
	MOVQ   dst+24(FP), R8
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	XORQ   BX, BX
	TESTQ  DX, DX
	JZ     lstore
lloop:
	VBROADCASTSD (SI)(BX*8), Y2
	VMOVUPD      (DI)(BX*8), Y3
	VMULPD       Y3, Y2, Y3
	VADDPD       Y3, Y0, Y0
	VMOVUPD      32(DI)(BX*8), Y4
	VMULPD       Y4, Y2, Y4
	VADDPD       Y4, Y1, Y1
	INCQ         BX
	CMPQ         BX, DX
	JLT          lloop
lstore:
	VMOVUPD Y0, (R8)
	VMOVUPD Y1, 32(R8)
	VZEROUPPER
	RET

// func mulAVX(dst, src *float64, n int)
//
// dst[i] *= src[i] for i < n (n a multiple of 4).
TEXT ·mulAVX(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), DX
	XORQ BX, BX
	SHRQ $2, DX
	JZ   mdone
mloop:
	VMOVUPD (DI)(BX*1), Y0
	VMOVUPD (SI)(BX*1), Y1
	VMULPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)(BX*1)
	ADDQ    $32, BX
	DECQ    DX
	JNZ     mloop
mdone:
	VZEROUPPER
	RET

// func subScaledAVX(dst, x, y *float64, n int, c float64)
//
// dst[i] = x[i] - c*y[i] for i < n (n a multiple of 4): one rounded
// multiply then one rounded subtract per slot, exactly the scalar shape.
TEXT ·subScaledAVX(SB), NOSPLIT, $0-40
	MOVQ         dst+0(FP), DI
	MOVQ         x+8(FP), SI
	MOVQ         y+16(FP), R8
	MOVQ         n+24(FP), DX
	VBROADCASTSD c+32(FP), Y3
	XORQ         BX, BX
	SHRQ         $2, DX
	JZ           sdone
sloop:
	VMOVUPD (R8)(BX*1), Y1
	VMULPD  Y3, Y1, Y1         // c*y
	VMOVUPD (SI)(BX*1), Y0
	VSUBPD  Y1, Y0, Y0         // x - c*y
	VMOVUPD Y0, (DI)(BX*1)
	ADDQ    $32, BX
	DECQ    DX
	JNZ     sloop
sdone:
	VZEROUPPER
	RET

// func sqScaleAVX(dst *float64, n int, s float64)
//
// dst[i] = (dst[i]*dst[i])*s for i < n (n a multiple of 4), rounding
// the square before the scale like the scalar loop.
TEXT ·sqScaleAVX(SB), NOSPLIT, $0-24
	MOVQ         dst+0(FP), DI
	MOVQ         n+8(FP), DX
	VBROADCASTSD s+16(FP), Y2
	XORQ         BX, BX
	SHRQ         $2, DX
	JZ           qdone
qloop:
	VMOVUPD (DI)(BX*1), Y0
	VMULPD  Y0, Y0, Y0         // m*m
	VMULPD  Y2, Y0, Y0         // (m*m)*s
	VMOVUPD Y0, (DI)(BX*1)
	ADDQ    $32, BX
	DECQ    DX
	JNZ     qloop
qdone:
	VZEROUPPER
	RET

DATA ·absMask+0(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA ·absMask+8(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA ·absMask+16(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA ·absMask+24(SB)/8, $0x7FFFFFFFFFFFFFFF
GLOBL ·absMask(SB), RODATA|NOPTR, $32

DATA ·plusInf+0(SB)/8, $0x7FF0000000000000
DATA ·plusInf+8(SB)/8, $0x7FF0000000000000
DATA ·plusInf+16(SB)/8, $0x7FF0000000000000
DATA ·plusInf+24(SB)/8, $0x7FF0000000000000
GLOBL ·plusInf(SB), RODATA|NOPTR, $32

DATA ·ones+0(SB)/8, $0x3FF0000000000000
DATA ·ones+8(SB)/8, $0x3FF0000000000000
DATA ·ones+16(SB)/8, $0x3FF0000000000000
DATA ·ones+24(SB)/8, $0x3FF0000000000000
GLOBL ·ones(SB), RODATA|NOPTR, $32

// The exact qNaN math.Hypot returns (math.NaN()'s payload).
DATA ·hypotNaN+0(SB)/8, $0x7FF8000000000001
DATA ·hypotNaN+8(SB)/8, $0x7FF8000000000001
DATA ·hypotNaN+16(SB)/8, $0x7FF8000000000001
DATA ·hypotNaN+24(SB)/8, $0x7FF8000000000001
GLOBL ·hypotNaN(SB), RODATA|NOPTR, $32

// func cabsAVX(dst *float64, src *complex128, n int)
//
// dst[i] = |src[i]| for i < n (n a multiple of 4), replicating the
// runtime's hypot kernel lane for lane: p, q = |re|, |im|;
// max, min with MAXSD/MINSD operand order; t = min/max;
// result = max*sqrt(1+t*t); then the special-case blends — +0 where
// max == +0, +Inf where either component is infinite, and math.NaN()'s
// exact bit pattern where a NaN is present without an infinity.
TEXT ·cabsAVX(SB), NOSPLIT, $0-24
	MOVQ    dst+0(FP), DI
	MOVQ    src+8(FP), SI
	MOVQ    n+16(FP), DX
	VMOVUPD ·absMask(SB), Y15
	VMOVUPD ·plusInf(SB), Y14
	VMOVUPD ·ones(SB), Y13
	VMOVUPD ·hypotNaN(SB), Y12
	VXORPD  Y11, Y11, Y11
	SHRQ    $2, DX
	JZ      cdone
cloop:
	VMOVUPD    (SI), Y0
	VMOVUPD    32(SI), Y1
	VPERM2F128 $0x20, Y1, Y0, Y2 // [re0 im0 re2 im2]
	VPERM2F128 $0x31, Y1, Y0, Y3 // [re1 im1 re3 im3]
	VUNPCKLPD  Y3, Y2, Y4        // RE, in order
	VUNPCKHPD  Y3, Y2, Y5        // IM, in order
	VANDPD     Y15, Y4, Y4       // p = |re|
	VANDPD     Y15, Y5, Y5       // q = |im|
	VMAXPD     Y5, Y4, Y6        // max (MAXSD tie order: q wins ties)
	VMINPD     Y4, Y5, Y7        // min (MINSD tie order: p wins ties)
	VDIVPD     Y6, Y7, Y8        // t = min/max
	VMULPD     Y8, Y8, Y8        // t*t
	VADDPD     Y13, Y8, Y8       // 1 + t*t
	VSQRTPD    Y8, Y8
	VMULPD     Y8, Y6, Y8        // max*sqrt(1+t*t)
	VCMPPD     $0, Y11, Y6, Y9   // max == +0
	VANDNPD    Y8, Y9, Y8        // force +0 there
	VCMPPD     $1, Y14, Y4, Y2   // p < Inf (false for NaN)
	VCMPPD     $1, Y14, Y5, Y3   // q < Inf
	VANDPD     Y3, Y2, Y2        // finite mask
	VCMPPD     $0, Y14, Y4, Y4   // p == Inf
	VCMPPD     $0, Y14, Y5, Y5   // q == Inf
	VORPD      Y5, Y4, Y4        // inf mask
	VANDPD     Y2, Y8, Y8        // finite result
	VANDPD     Y4, Y14, Y5       // +Inf where inf
	VORPD      Y4, Y2, Y2        // covered lanes
	VANDNPD    Y12, Y2, Y2       // NaN where neither finite nor inf
	VORPD      Y5, Y8, Y8
	VORPD      Y2, Y8, Y8
	VMOVUPD    Y8, (DI)
	ADDQ       $64, SI
	ADDQ       $32, DI
	DECQ       DX
	JNZ        cloop
cdone:
	VZEROUPPER
	RET

// func widenAVX(dst *complex128, src *float64, n int)
//
// dst[i] = complex(src[i], 0) for i < n (n a multiple of 4).
TEXT ·widenAVX(SB), NOSPLIT, $0-24
	MOVQ   dst+0(FP), DI
	MOVQ   src+8(FP), SI
	MOVQ   n+16(FP), DX
	VXORPD Y3, Y3, Y3
	SHRQ   $2, DX
	JZ     wdone
wloop:
	VMOVUPD    (SI), Y0
	VUNPCKLPD  Y3, Y0, Y1        // [s0 0 s2 0]
	VUNPCKHPD  Y3, Y0, Y2        // [s1 0 s3 0]
	VPERM2F128 $0x20, Y2, Y1, Y4 // [s0 0 s1 0]
	VPERM2F128 $0x31, Y2, Y1, Y5 // [s2 0 s3 0]
	VMOVUPD    Y4, (DI)
	VMOVUPD    Y5, 32(DI)
	ADDQ       $32, SI
	ADDQ       $64, DI
	DECQ       DX
	JNZ        wloop
wdone:
	VZEROUPPER
	RET

// func fftStageAVX(x *complex128, n, size int, tw *complex128)
//
// One radix-2 DIT butterfly stage over every size-aligned group of x
// (size >= 4, so half = size/2 is even and two butterflies fit per
// register). The complex multiply is the naive four-product form the
// compiler emits for complex128: re = rb*rw - ib*iw via VADDSUBPD's
// even lanes (subtrahend order preserved), im = rb*iw + ib*rw via its
// odd lanes (addition commutes exactly). Each product and each add/sub
// is rounded separately, so every butterfly matches the scalar loop
// bit for bit.
TEXT ·fftStageAVX(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ n+8(FP), DX
	MOVQ size+16(FP), CX
	MOVQ tw+24(FP), R8
	MOVQ CX, R9
	SHLQ $3, R9                  // half in bytes = (size/2)*16
	SHLQ $4, DX
	ADDQ SI, DX                  // end of x
fouter:
	CMPQ SI, DX
	JGE  fdone
	MOVQ SI, DI                  // a half
	LEAQ (SI)(R9*1), R11         // b half
	MOVQ R8, R12                 // twiddles
	MOVQ R9, BX                  // bytes left in this half
finner:
	VMOVUPD    (R11), Y1         // B = [b0, b1]
	VMOVUPD    (R12), Y2         // W = [w0, w1]
	VMOVDDUP   Y2, Y3            // [rw0 rw0 rw1 rw1]
	VPERMILPD  $0xF, Y2, Y4      // [iw0 iw0 iw1 iw1]
	VMULPD     Y3, Y1, Y5        // [rb*rw, ib*rw]
	VPERMILPD  $0x5, Y1, Y6      // [ib, rb]
	VMULPD     Y4, Y6, Y7        // [ib*iw, rb*iw]
	VADDSUBPD  Y7, Y5, Y7        // b*w: even -, odd +
	VMOVUPD    (DI), Y0          // A
	VADDPD     Y7, Y0, Y8        // a + b*w
	VSUBPD     Y7, Y0, Y9        // a - b*w
	VMOVUPD    Y8, (DI)
	VMOVUPD    Y9, (R11)
	ADDQ       $32, DI
	ADDQ       $32, R11
	ADDQ       $32, R12
	SUBQ       $32, BX
	JNZ        finner
	LEAQ (SI)(R9*2), SI          // next group
	JMP  fouter
fdone:
	VZEROUPPER
	RET

// func fftStage2AVX(x *complex128, n int, w complex128)
//
// The size-2 butterfly stage: n adjacent (a, b) pairs, two pairs per
// iteration (n even, >= 2). The multiply by w is kept even though the
// stage-2 twiddle is 1+0i, matching the general-stage arithmetic.
TEXT ·fftStage2AVX(SB), NOSPLIT, $0-32
	MOVQ         x+0(FP), SI
	MOVQ         n+8(FP), DX
	VBROADCASTSD w_real+16(FP), Y3
	VBROADCASTSD w_imag+24(FP), Y4
	SHRQ         $1, DX
gloop:
	VMOVUPD    (SI), Y0          // [a0, b0]
	VMOVUPD    32(SI), Y1        // [a1, b1]
	VPERM2F128 $0x20, Y1, Y0, Y5 // A = [a0, a1]
	VPERM2F128 $0x31, Y1, Y0, Y6 // B = [b0, b1]
	VMULPD     Y3, Y6, Y7        // [rb*rw, ib*rw]
	VPERMILPD  $0x5, Y6, Y8      // [ib, rb]
	VMULPD     Y4, Y8, Y8        // [ib*iw, rb*iw]
	VADDSUBPD  Y8, Y7, Y7        // b*w
	VADDPD     Y7, Y5, Y8        // a + b*w
	VSUBPD     Y7, Y5, Y9        // a - b*w
	VPERM2F128 $0x20, Y9, Y8, Y0 // [out_a0, out_b0]
	VPERM2F128 $0x31, Y9, Y8, Y1 // [out_a1, out_b1]
	VMOVUPD    Y0, (SI)
	VMOVUPD    Y1, 32(SI)
	ADDQ       $64, SI
	DECQ       DX
	JNZ        gloop
	VZEROUPPER
	RET

// func sad4x4SSE(a *byte, astride int, b *byte, bstride int) int32
//
// Sum of absolute differences of two 4x4 byte blocks: the four rows of
// each block are packed into one 16-byte register and reduced with
// PSADBW. Integer addition is exact, so any summation order matches
// the scalar loop.
TEXT ·sad4x4SSE(SB), NOSPLIT, $0-36
	MOVQ       a+0(FP), SI
	MOVQ       astride+8(FP), R8
	MOVQ       b+16(FP), DI
	MOVQ       bstride+24(FP), R9
	MOVL       (SI), X0
	MOVL       (SI)(R8*1), X1
	LEAQ       (SI)(R8*2), SI
	MOVL       (SI), X2
	MOVL       (SI)(R8*1), X3
	PUNPCKLLQ  X1, X0
	PUNPCKLLQ  X3, X2
	PUNPCKLQDQ X2, X0            // block a, 16 bytes
	MOVL       (DI), X4
	MOVL       (DI)(R9*1), X5
	LEAQ       (DI)(R9*2), DI
	MOVL       (DI), X6
	MOVL       (DI)(R9*1), X7
	PUNPCKLLQ  X5, X4
	PUNPCKLLQ  X7, X6
	PUNPCKLQDQ X6, X4            // block b, 16 bytes
	PSADBW     X4, X0            // two qword partial sums
	PSHUFD     $0xEE, X0, X1
	MOVQ       X0, AX
	MOVQ       X1, BX
	ADDQ       BX, AX
	MOVL       AX, ret+32(FP)
	RET

//go:build !amd64

package simd

// available: no vector backend on this architecture; every wrapper
// falls through to its *Ref body because `enabled` stays false.
var available = false

// The stubs below exist only so the shared dispatch wrappers compile;
// they are unreachable while available == false.

func axpy4AVX(dst, s0, s1, s2, s3 *float64, n int, a0, a1, a2, a3 float64) {
	panic("simd: no vector backend")
}

func adamAVX(w, grad, m, v *float64, n int, inv, b1, ib1, b2, ib2, c1, c2, lr, eps float64) {
	panic("simd: no vector backend")
}

func dotI8AVX(w, x *float64, n int, dst *float64) { panic("simd: no vector backend") }

func lagDot8AVX(x, xk *float64, n int, dst *float64) { panic("simd: no vector backend") }

func mulAVX(dst, src *float64, n int) { panic("simd: no vector backend") }

func subScaledAVX(dst, x, y *float64, n int, c float64) { panic("simd: no vector backend") }

func sqScaleAVX(dst *float64, n int, s float64) { panic("simd: no vector backend") }

func cabsAVX(dst *float64, src *complex128, n int) { panic("simd: no vector backend") }

func widenAVX(dst *complex128, src *float64, n int) { panic("simd: no vector backend") }

func fftStageAVX(x *complex128, n, size int, tw *complex128) { panic("simd: no vector backend") }

func fftStage2AVX(x *complex128, n int, w complex128) { panic("simd: no vector backend") }

func sad4x4SSE(a *byte, astride int, b *byte, bstride int) int32 {
	panic("simd: no vector backend")
}

func deblockEdge4HSSE(p *byte, stride int, alpha, beta, tc0, strong int32) uint32 {
	panic("simd: no vector backend")
}

func deblockEdge4VSSE(p *byte, stride int, alpha, beta, tc0, strong int32) uint32 {
	panic("simd: no vector backend")
}

package fleet

import (
	"testing"
	"time"

	"affectedge/internal/parallel"
)

// TestChunkedIngestFingerprint pins the streaming-ingest contract: a run
// whose observations travel through the bounded per-shard FIFO in tiny
// fragments and whose video probes decode progressively must fingerprint
// identically to the whole-buffer feed, and the (unfingerprinted) video
// counters must match too. Covers several chunk granularities, including
// one smaller than a float64 and one larger than any probe bitstream.
func TestChunkedIngestFingerprint(t *testing.T) {
	base := detCfg()
	base.VideoEvery = 10
	whole, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if whole.VideoDecodes == 0 {
		t.Fatal("probe never ran; test misconfigured")
	}
	for _, chunk := range []int{1, 8, 64, 4096, 1 << 20} {
		cfg := base
		cfg.ChunkBytes = chunk
		st, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := st.Fingerprint(), whole.Fingerprint(); got != want {
			t.Fatalf("chunk %d: fingerprint %s != whole-buffer %s\nchunked %+v\nwhole   %+v", chunk, got, want, st, whole)
		}
		if st.VideoDecodes != whole.VideoDecodes || st.VideoFrames != whole.VideoFrames ||
			st.VideoConcealed != whole.VideoConcealed {
			t.Fatalf("chunk %d: video counters (%d, %d, %d) != whole-buffer (%d, %d, %d)",
				chunk, st.VideoDecodes, st.VideoFrames, st.VideoConcealed,
				whole.VideoDecodes, whole.VideoFrames, whole.VideoConcealed)
		}
	}
}

// TestChunkedIngestAcrossWorkers extends the worker-count determinism
// contract to chunked mode: per-shard FIFOs and stream decoders are owned
// by whichever goroutine holds the shard, so parallelism stays invisible.
func TestChunkedIngestAcrossWorkers(t *testing.T) {
	cfg := detCfg()
	cfg.VideoEvery = 17
	cfg.ChunkBytes = 24
	fps := map[int]string{}
	for _, workers := range []int{1, 4} {
		defer parallel.SetWorkers(parallel.SetWorkers(workers))
		st, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fps[workers] = st.Fingerprint()
	}
	if fps[1] != fps[4] {
		t.Fatalf("chunked fingerprints diverge across worker counts: %v", fps)
	}
}

// TestObserveChunks checks the live-path fragment API agrees with Observe:
// same session trajectory, same stats, and the same validation.
func TestObserveChunks(t *testing.T) {
	mk := func() *Fleet {
		f, err := New(Config{Sessions: 1, Shards: 1, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Start(); err != nil {
			t.Fatal(err)
		}
		return f
	}
	dim := 24
	x := make([]float64, dim)
	for i := range x {
		x[i] = float64(i) * 0.125
	}
	whole := mk()
	frag := mk()
	for i := 0; i < 50; i++ {
		at := time.Duration(i) * time.Second
		for j := range x {
			x[j] += 0.25
		}
		if err := whole.Observe(0, at, x); err != nil {
			t.Fatal(err)
		}
		if err := frag.ObserveChunks(0, at, x[:5], x[5:5], x[5:19], x[19:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := whole.Close(); err != nil {
		t.Fatal(err)
	}
	if err := frag.Close(); err != nil {
		t.Fatal(err)
	}
	ws, fs := whole.Stats(), frag.Stats()
	if ws.Observations != fs.Observations || ws.AttentionSwitches != fs.AttentionSwitches ||
		ws.MoodSwitches != fs.MoodSwitches || ws.Discarded != fs.Discarded {
		t.Fatalf("fragment feed diverged: whole %+v\nfragmented %+v", ws, fs)
	}
	if ws.Observations == 0 {
		t.Fatal("no observations processed")
	}

	bad := mk()
	defer bad.Close()
	if err := bad.ObserveChunks(0, 0, x[:5]); err == nil {
		t.Fatal("short fragment total accepted")
	}
	if err := bad.ObserveChunks(99, 0, x); err == nil {
		t.Fatal("unknown session accepted")
	}
}

package fleet

import (
	"bytes"
	"testing"
)

// benchFleet builds a warmed-up fleet for the snapshot benchmarks.
func benchFleet(b *testing.B, sessions, shards, ticks int) *Fleet {
	b.Helper()
	f, err := New(Config{Sessions: sessions, Shards: shards, Seed: 1, LaunchEvery: 5})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.RunTicks(ticks); err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkSnapshotSession prices serializing one session's full state —
// manager, device process table, trace, RNG position — the unit cost of
// migrating a user between shards or hosts.
func BenchmarkSnapshotSession(b *testing.B) {
	f := benchFleet(b, 64, 4, 20)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := f.SnapshotSession(i%64, &buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/session")
	b.ReportMetric(float64(buf.Len()), "bytes/session")
}

// BenchmarkRestoreSession prices the inverse: decode, validate, rebuild
// the manager and device, fast-forward the RNG, and splice the session
// back into the shard.
func BenchmarkRestoreSession(b *testing.B) {
	f := benchFleet(b, 64, 4, 20)
	var buf bytes.Buffer
	if err := f.SnapshotSession(7, &buf); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.RemoveSession(7); err != nil {
			b.Fatal(err)
		}
		if err := f.RestoreSession(bytes.NewReader(blob)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/session")
}

// BenchmarkFleetSnapshotRestore prices a whole-fleet checkpoint round
// trip — the hot-restart path — normalized per session.
func BenchmarkFleetSnapshotRestore(b *testing.B) {
	const sessions = 256
	f := benchFleet(b, sessions, 8, 20)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := f.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
		if err := f.Restore(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sessions), "ns/session")
	b.ReportMetric(float64(buf.Cap()), "bytes/fleet")
}

// BenchmarkChurnTick prices a simulation round under steady churn — every
// tick parks one session and revives another (catch-up replay included) —
// against the all-connected BenchmarkFleetTick baseline.
func BenchmarkChurnTick(b *testing.B) {
	const sessions = 256
	f := benchFleet(b, sessions, 8, 2)
	park := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.RunTicks(1); err != nil {
			b.Fatal(err)
		}
		next := (park + 1) % sessions
		if err := f.Disconnect(next); err != nil {
			b.Fatal(err)
		}
		if err := f.Reconnect(park); err != nil && i > 0 {
			b.Fatal(err)
		}
		park = next
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sessions), "ns/observation")
}

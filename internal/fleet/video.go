package fleet

import (
	"errors"
	"fmt"

	"affectedge/internal/h264"
	"affectedge/internal/stream"
)

// The fleet's video workload: every session periodically decodes a shared
// probe clip in whatever operating mode its manager currently selects,
// exercising the affect-adaptive decoder (Input Selector deletion plus the
// deblocking knob) at fleet scale. The probe composes with the rest of the
// deterministic contract:
//
//   - The clip is generated and encoded once at New from the fleet seed,
//     and the per-mode Input Selector passes are pre-applied, so a probe
//     round is pure decode work over shared read-only streams.
//   - Each shard owns one pooled decoder; shards fan out over the
//     internal/parallel pool, so probe decoding batches across shards the
//     same way classification does, and the FramePool keeps steady-state
//     plane allocations at zero.
//   - Probing only reads session state (Manager.DecoderMode), so a run's
//     fingerprint is identical with the probe on or off, at any worker
//     count.

// buildVideoProbe encodes the probe clip and pre-applies the Input
// Selector for every decoder mode. Called from New when VideoEvery > 0.
func (f *Fleet) buildVideoProbe() error {
	vc := h264.CalibrationVideoConfig(f.cfg.VideoFrames)
	vc.Seed = f.cfg.Seed
	src, err := h264.GenerateVideo(vc)
	if err != nil {
		return err
	}
	enc, err := h264.NewEncoder(h264.CalibrationEncoderConfig())
	if err != nil {
		return err
	}
	stream, units, err := enc.EncodeSequence(src)
	if err != nil {
		return err
	}
	f.videoTotal = len(src)
	for _, mode := range h264.Modes() {
		sel := mode.Selector()
		if !sel.Enabled() {
			f.videoStreams[mode] = stream
			continue
		}
		kept, _ := h264.ApplySelector(units, sel)
		ms, err := h264.MarshalStream(kept)
		if err != nil {
			return err
		}
		f.videoStreams[mode] = ms
	}
	return nil
}

// probeVideo runs one probe round: every session on the shard decodes the
// clip in its manager's current mode on the shard's pooled decoder.
// Output frames (decoded and concealed alike) go straight back to the
// pool — the probe measures decode work, nobody displays the frames.
// Runs single-goroutine per shard under the RunTicks ForEach partition.
func (sh *shard) probeVideo() error {
	if sh.vdec == nil {
		sh.vpool = h264.NewFramePool()
		sh.vdec = h264.NewDecoder()
		sh.vdec.SetPool(sh.vpool)
	}
	for _, id := range sh.order {
		s := sh.sessions[id]
		mode := s.mgr.DecoderMode()
		sh.vdec.SetDeblock(mode.DeblockEnabled())
		before := sh.vdec.Activity()
		var frames []*h264.Frame
		var err error
		if sh.f.cfg.ChunkBytes > 0 {
			frames, err = sh.probeChunked(sh.f.videoStreams[mode])
		} else {
			sh.vdec.Reset()
			frames, err = sh.vdec.DecodeStreamInto(sh.f.videoStreams[mode], sh.vframes[:0])
		}
		if err != nil {
			return err
		}
		frames = append(frames, sh.vdec.ConcealTo(sh.f.videoTotal)...)
		after := sh.vdec.Activity()
		sh.videoDecodes++
		sh.videoFrames += int64(after.FramesOut - before.FramesOut)
		sh.videoConcealed += int64(after.Concealed - before.Concealed)
		sh.vpool.PutAll(frames)
		sh.vframes = frames[:0]
		mtr.videoDecodes.Inc()
	}
	return nil
}

// probeChunked decodes one probe bitstream progressively: the stream is
// fed to the shard's h264.StreamDecoder in Config.ChunkBytes slices, and
// the bounded frame FIFO is drained on backpressure — the single-threaded
// drain-retry shape. The decode path (decodeNALInto, pool, activity) is
// the one DecodeStreamInto uses, so frames and activity accounting are
// identical to the whole-buffer probe; only peak buffered bytes change.
func (sh *shard) probeChunked(data []byte) ([]*h264.Frame, error) {
	if sh.sdec == nil {
		sd, err := h264.NewStreamDecoder(sh.vdec, 4)
		if err != nil {
			return nil, err
		}
		sh.sdec = sd
	}
	sh.sdec.Reset() // also resets the wrapped decoder's stream state
	frames := sh.vframes[:0]
	drain := func() error {
		for {
			f, ok, err := sh.sdec.Frames().TryPop()
			if err != nil || !ok {
				return err
			}
			frames = append(frames, f)
		}
	}
	chunk := sh.f.cfg.ChunkBytes
	for at := 0; at < len(data); {
		end := at + chunk
		if end > len(data) {
			end = len(data)
		}
		n, err := sh.sdec.Feed(data[at:end])
		if errors.Is(err, stream.ErrBackpressure) {
			if derr := drain(); derr != nil {
				return nil, derr
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		at += n
	}
	for {
		err := sh.sdec.Finish()
		if err == nil {
			break
		}
		if !errors.Is(err, stream.ErrBackpressure) {
			return nil, err
		}
		if derr := drain(); derr != nil {
			return nil, derr
		}
	}
	if err := drain(); err != nil && !errors.Is(err, stream.ErrClosed) {
		return nil, fmt.Errorf("fleet: probe drain: %w", err)
	}
	return frames, nil
}

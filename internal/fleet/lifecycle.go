package fleet

import (
	"fmt"
	"sort"
	"time"
)

// Session lifecycle: real deployments see devices drop off the network and
// return constantly, and the paper's premise — durable per-user affective
// state driving memory management — only holds if that state survives the
// gap. Disconnect parks a session (frozen, out of the batching order);
// Reconnect revives it and, on the deterministic path, replays the rounds
// it missed. Sessions are closed systems (all randomness through their own
// counted RNG, no cross-session reads) and the int8 kernels make one-row
// and batched inference bitwise identical, so a caught-up session rejoins
// on exactly the trajectory it would have had without the gap — the whole
// run's Stats.Fingerprint is invariant under any churn schedule (pinned by
// chaos_test.go).
//
// On the deterministic path, call Disconnect/Reconnect between RunTicks
// rounds (the fleet is quiescent); on the live path they may race freely
// with Observe, which treats a parked session as unknown.

// Disconnect parks session id: it keeps all state but stops observing,
// launching, and batching until Reconnect. Fails on an unknown id, an
// already-disconnected id, or a closed fleet.
func (f *Fleet) Disconnect(id int) error {
	if f.closed.Load() {
		return ErrClosed
	}
	sh := f.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sessions[id]
	if !ok {
		if _, parked := sh.parked[id]; parked {
			return fmt.Errorf("fleet: session %d already disconnected", id)
		}
		return fmt.Errorf("%w %d", ErrUnknownSession, id)
	}
	delete(sh.sessions, id)
	i := sort.SearchInts(sh.order, id)
	sh.order = append(sh.order[:i], sh.order[i+1:]...)
	s.ticks = f.base
	sh.parked[id] = s
	mtr.disconnects.Inc()
	return nil
}

// Reconnect revives a disconnected session. On the deterministic path the
// session first replays every round it missed (same RNG stream, same
// classifier, serially), converging bit-exactly onto the churn-free
// trajectory before rejoining the batch order; on the live path (started
// fleet) there is no tick clock and the session simply resumes intake.
// Reconnecting a connected session is rejected — disconnect first.
func (f *Fleet) Reconnect(id int) error {
	if f.closed.Load() {
		return ErrClosed
	}
	sh := f.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.parked[id]
	if !ok {
		if _, live := sh.sessions[id]; live {
			return fmt.Errorf("fleet: session %d is connected; disconnect before reconnect", id)
		}
		return fmt.Errorf("%w %d", ErrUnknownSession, id)
	}
	if !f.started.Load() {
		if err := sh.catchUp(s, f.base); err != nil {
			return err
		}
	}
	delete(sh.parked, id)
	sh.insert(s)
	mtr.reconnects.Inc()
	return nil
}

// Connected reports whether session id is currently in the live set —
// the ingest server's per-connection authentication check: a HELLO for a
// session that is absent or parked is refused.
func (f *Fleet) Connected(id int) bool {
	if id < 0 {
		return false
	}
	sh := f.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.sessions[id]
	return ok
}

// Disconnected reports whether session id is currently parked.
func (f *Fleet) Disconnected(id int) bool {
	sh := f.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.parked[id]
	return ok
}

// catchUp replays the deterministic rounds session s missed while parked,
// from s.ticks up to (not including) round `to`: latent step, observation
// synthesis, one-row classification, control-loop apply, launch schedule —
// the exact per-session work tick() performs, in the exact RNG draw order.
// BatchRows is backfilled one row per replayed round, completing the
// logical accounting tick() recorded while the session was away. Caller
// holds sh.mu (or has exclusive shard access).
func (sh *shard) catchUp(s *session, to int) error {
	f := sh.f
	dim := f.cfg.FeatureDim
	classes := len(f.stream.Protos)
	for t := s.ticks; t < to; t++ {
		now := f.cfg.TickEvery * time.Duration(t+1)
		s.stepLatent(t, f.cfg.SwitchEvery)
		sh.feat = growFloats(sh.feat, dim)
		sh.logits = growFloats(sh.logits, classes)
		if err := sh.ingestRow(sh.feat[:dim], s); err != nil {
			return err
		}
		if err := f.model.InferBatch(&sh.qs, sh.feat[:dim], 1, sh.logits[:classes]); err != nil {
			return err
		}
		if err := sh.applyRow(s, now, sh.logits[:classes]); err != nil {
			return err
		}
		if err := s.maybeLaunch(sh, t, now); err != nil {
			return err
		}
		sh.batchRows++
		mtr.batchRows.Observe(1)
		s.ticks = t + 1
	}
	return nil
}

package fleet

import (
	"fmt"
	"testing"

	"affectedge/internal/parallel"
)

// BenchmarkFleetObserve measures the shard inference stage — classifying
// every queued session observation — comparing one coalesced batched int8
// evaluation against per-session serial evaluation of the same rows. This
// is the stage sharding exists to amortize: per-evaluation setup (scratch
// sizing, scale math, layer dispatch) is paid once per batch instead of
// once per session. Results are bitwise identical either way (pinned by
// TestDeterminismBatchedVsSerial); only throughput differs.
func BenchmarkFleetObserve(b *testing.B) {
	for _, mode := range []struct {
		name   string
		serial bool
	}{
		{"coalesced", false},
		{"serial", true},
	} {
		for _, rows := range []int{16, 128} {
			b.Run(fmt.Sprintf("%s/rows=%d", mode.name, rows), func(b *testing.B) {
				f, err := New(Config{
					Sessions:    rows, // one shard: rows sessions per batch
					Shards:      1,
					Seed:        1,
					SerialInfer: mode.serial,
				})
				if err != nil {
					b.Fatal(err)
				}
				sh := f.shards[0]
				// Pre-synthesize the shard's feature matrix once; the
				// benchmark then times classification alone.
				dim := f.cfg.FeatureDim
				sh.feat = growFloats(sh.feat, rows*dim)
				for k, id := range sh.order {
					s := sh.sessions[id]
					if err := f.stream.Sample(sh.feat[k*dim:(k+1)*dim], s.latent, f.cfg.Noise, s.rng); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := sh.infer(0, rows); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/observation")
			})
		}
	}
}

// BenchmarkFleetTick prices the full observation round per session —
// synthesis, classification, hysteresis control, launch schedule — at one
// parallel worker, the end-to-end cost a capacity plan would use.
func BenchmarkFleetTick(b *testing.B) {
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	for _, sessions := range []int{64, 512} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			f, err := New(Config{Sessions: sessions, Shards: 4, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Drive shard ticks directly: RunTicks would fold the
				// O(sessions) stats snapshot into every iteration.
				for _, sh := range f.shards {
					if err := sh.tick(i); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sessions), "ns/observation")
		})
	}
}

// BenchmarkFleetStats prices the aggregate snapshot at population scale.
func BenchmarkFleetStats(b *testing.B) {
	f, err := New(Config{Sessions: 2000, Shards: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.Stats().Sessions != 2000 {
			b.Fatal("bad snapshot")
		}
	}
}

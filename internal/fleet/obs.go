package fleet

import (
	"fmt"

	"affectedge/internal/obs"
)

// metrics holds the package's zero-allocation instrument handles. All
// handles are nil until WireMetrics runs, and every obs method is a no-op
// on nil receivers, so unwired fleets pay a single predictable branch.
type metrics struct {
	scope        *obs.Scope
	sessions     *obs.Gauge     // current session population
	added        *obs.Counter   // AddSession successes
	removed      *obs.Counter   // RemoveSession successes
	ingress      *obs.Counter   // live observations accepted into a queue
	drops        *obs.Counter   // live observations dropped (backpressure)
	lateDrops    *obs.Counter   // queued observations whose session was removed
	batches      *obs.Counter   // inference rounds (batched or serial)
	batchRows    *obs.Histogram // rows coalesced per inference round
	videoDecodes *obs.Counter   // per-session probe clip decodes
	disconnects  *obs.Counter   // sessions parked by Disconnect
	reconnects   *obs.Counter   // sessions revived by Reconnect
	snapshots    *obs.Counter   // session/shard/fleet snapshots written
	restores     *obs.Counter   // session/shard/fleet restores applied
}

var mtr metrics

// WireMetrics attaches the fleet package to an observability scope.
// Call before New: per-shard instruments (queue-depth high-water gauges,
// drop counters, named "shardNN.*" under nested scopes) are created when
// the fleet is built.
func WireMetrics(s *obs.Scope) {
	mtr.scope = s
	mtr.sessions = s.Gauge("sessions")
	mtr.added = s.Counter("sessions_added")
	mtr.removed = s.Counter("sessions_removed")
	mtr.ingress = s.Counter("ingress")
	mtr.drops = s.Counter("drops")
	mtr.lateDrops = s.Counter("late_drops")
	mtr.batches = s.Counter("batches")
	mtr.batchRows = s.Histogram("batch_rows", obs.ExponentialBuckets(1, 2, 10))
	mtr.videoDecodes = s.Counter("video_decodes")
	mtr.disconnects = s.Counter("disconnects")
	mtr.reconnects = s.Counter("reconnects")
	mtr.snapshots = s.Counter("snapshots")
	mtr.restores = s.Counter("restores")
}

// shard returns the nested per-shard scope ("<scope>.shardNN."); nil when
// metrics are unwired, which nil-safe handles absorb.
func (m *metrics) shard(i int) *obs.Scope {
	return m.scope.Scope(fmt.Sprintf("shard%02d", i))
}

package fleet

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"affectedge/internal/android"
	"affectedge/internal/core"
	"affectedge/internal/emotion"
)

// Snapshot/restore: gob envelopes carrying full session state — the
// manager's hidden control-loop state, the device's process table and
// metrics, the latent emotion schedule, and the RNG draw count — for hot
// restart and cross-process shard migration. Every envelope is versioned
// and records the configuration summary the state is only meaningful
// under; restores validate the whole envelope and build every session
// before committing anything, so a corrupt or mismatched snapshot errors
// cleanly and never half-applies (FuzzSnapshotRestore pins this). A
// restored fleet continues on the bit-exact trajectory of the original:
// snapshot → restore round trips are fingerprint-identical.
//
// Like the rest of the deterministic API, call these between RunTicks
// rounds.

// snapshotVersion is the wire version of all three fleet envelopes. Bump
// it whenever any serialized field set changes meaning.
const snapshotVersion = 1

// maxDrawsPerTick bounds how many RNG draws a snapshot may claim per
// elapsed tick. A real session draws on the order of FeatureDim values per
// round (plus geometrically-bounded rejection resamples), so 2^16 is
// unreachable legitimately — but restore fast-forwards the generator one
// step per claimed draw, and without a bound a corrupted count of ~2^64
// turns RestoreSession into an unbounded spin (found by
// FuzzSnapshotRestore).
const maxDrawsPerTick = 1 << 16

// VersionError reports a snapshot envelope whose wire version does not
// match what this build reads.
type VersionError struct {
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("fleet: snapshot version %d, want %d", e.Got, e.Want)
}

// snapMeta is the configuration summary a snapshot is only meaningful
// under: everything that shapes a session's deterministic trajectory.
// Restores reject a mismatch. Comparable by design.
type snapMeta struct {
	Seed          int64
	FeatureDim    int
	Noise         float64
	SwitchEvery   int
	LaunchEvery   int
	TickEvery     time.Duration
	Hysteresis    int
	MinConfidence float64
	Shards        int
	Traffic       string
}

func (f *Fleet) meta() snapMeta {
	return snapMeta{
		Seed:          f.cfg.Seed,
		FeatureDim:    f.cfg.FeatureDim,
		Noise:         f.cfg.Noise,
		SwitchEvery:   f.cfg.SwitchEvery,
		LaunchEvery:   f.cfg.LaunchEvery,
		TickEvery:     f.cfg.TickEvery,
		Hysteresis:    f.cfg.Hysteresis,
		MinConfidence: f.cfg.MinConfidence,
		Shards:        len(f.shards),
		Traffic:       f.cfg.Traffic.Name(),
	}
}

// sessionState is one session in exportable form. The RNG is captured as
// its draw count alone: the seed is derivable from (fleet seed, id), and
// math/rand's generator advances one internal step per draw, so seed +
// fast-forward reproduces the exact remaining stream (see countingSource).
type sessionState struct {
	ID         int
	Ticks      int // deterministic round the session has advanced to
	Draws      uint64
	Latent     emotion.Label
	NextSwitch int
	NextLaunch int
	Parked     bool
	Manager    core.ManagerState
	Device     android.DeviceState
}

// sessionEnvelope is the SnapshotSession wire format.
type sessionEnvelope struct {
	Version int
	Meta    snapMeta
	State   sessionState
}

// shardEnvelope is the SnapshotShard wire format: the shard's whole
// session population plus its serving-plane accounting, so a migrated
// shard's Stats contribution is identical to the original's.
type shardEnvelope struct {
	Version  int
	Meta     snapMeta
	Shard    int // stripe index; ids must map here
	Base     int // fleet tick at snapshot
	Apps     []string
	Device   android.DeviceConfig
	Sessions []sessionState

	Batches        int64
	BatchRows      int64
	MaxRows        int
	VideoDecodes   int64
	VideoFrames    int64
	VideoConcealed int64
}

// fleetEnvelope is the whole-fleet Snapshot wire format.
type fleetEnvelope struct {
	Version int
	Meta    snapMeta
	Base    int
	Shards  []shardEnvelope
}

// captureSession exports s. live distinguishes a session in the batch
// order (implicitly at the fleet tick) from a parked one (frozen at its
// own tick). Caller holds the shard lock.
func (f *Fleet) captureSession(s *session, live bool) sessionState {
	ticks := s.ticks
	if live {
		ticks = f.base
	}
	return sessionState{
		ID:         s.id,
		Ticks:      ticks,
		Draws:      s.src.draws(),
		Latent:     s.latent,
		NextSwitch: s.nextSwitch,
		NextLaunch: s.nextLaunch,
		Parked:     !live,
		Manager:    s.mgr.ExportState(),
		Device:     s.dev.ExportState(),
	}
}

// buildSession reconstructs a session from its exported state, validating
// everything against the target shard: id striping, tick bounds, enum
// ranges, manager and device state. Nothing is shared with the envelope
// and nothing fleet-visible is mutated — the caller commits the result.
func (f *Fleet) buildSession(sh *shard, st sessionState, base int) (*session, error) {
	if st.ID < 0 {
		return nil, fmt.Errorf("fleet: snapshot session id %d", st.ID)
	}
	if f.shardOf(st.ID) != sh {
		return nil, fmt.Errorf("fleet: snapshot session %d does not stripe onto shard %d", st.ID, sh.idx)
	}
	if st.Ticks < 0 || st.Ticks > base {
		return nil, fmt.Errorf("fleet: snapshot session %d at tick %d, fleet at %d", st.ID, st.Ticks, base)
	}
	if !st.Latent.Valid() {
		return nil, fmt.Errorf("fleet: snapshot session %d latent %d out of range", st.ID, int(st.Latent))
	}
	if st.NextSwitch < 0 || st.NextLaunch < 0 {
		return nil, fmt.Errorf("fleet: snapshot session %d has negative schedule", st.ID)
	}
	if st.Draws > (uint64(base)+2)*maxDrawsPerTick {
		return nil, fmt.Errorf("fleet: snapshot session %d claims %d RNG draws by tick %d", st.ID, st.Draws, base)
	}
	mc := core.DefaultManagerConfig()
	mc.Hysteresis = f.cfg.Hysteresis
	mc.MinConfidence = f.cfg.MinConfidence
	mc.DisableHistory = true
	mgr, err := core.NewManager(mc)
	if err != nil {
		return nil, err
	}
	if err := mgr.ImportState(st.Manager); err != nil {
		return nil, fmt.Errorf("fleet: snapshot session %d: %w", st.ID, err)
	}
	dev, err := android.NewDevice(sh.devcfg, f.policy)
	if err != nil {
		return nil, err
	}
	if err := dev.ImportState(st.Device); err != nil {
		return nil, fmt.Errorf("fleet: snapshot session %d: %w", st.ID, err)
	}
	src := newCountingSource(sessionSeed(f.cfg.Seed, st.ID))
	src.skip(st.Draws)
	return &session{
		id:         st.ID,
		rng:        rand.New(src),
		src:        src,
		mgr:        mgr,
		dev:        dev,
		latent:     st.Latent,
		nextSwitch: st.NextSwitch,
		nextLaunch: st.NextLaunch,
		ticks:      st.Ticks,
	}, nil
}

// SnapshotSession writes session id (connected or disconnected) to w as a
// versioned gob envelope. The session is not disturbed; pair with
// RemoveSession to migrate it out.
func (f *Fleet) SnapshotSession(id int, w io.Writer) error {
	sh := f.shardOf(id)
	sh.mu.Lock()
	var env sessionEnvelope
	if s, ok := sh.sessions[id]; ok {
		env = sessionEnvelope{Version: snapshotVersion, Meta: f.meta(), State: f.captureSession(s, true)}
	} else if s, ok := sh.parked[id]; ok {
		env = sessionEnvelope{Version: snapshotVersion, Meta: f.meta(), State: f.captureSession(s, false)}
	} else {
		sh.mu.Unlock()
		return fmt.Errorf("%w %d", ErrUnknownSession, id)
	}
	sh.mu.Unlock()
	if err := gob.NewEncoder(w).Encode(&env); err != nil {
		return err
	}
	mtr.snapshots.Inc()
	return nil
}

// RestoreSession installs a session previously written by SnapshotSession.
// The id must not currently exist (remove it first when round-tripping in
// place). A session snapshotted live at an earlier fleet tick is caught up
// to the current tick before it rejoins the batch order; a parked snapshot
// stays parked until Reconnect. Fails — mutating nothing — on a corrupt
// stream, wrong version (*VersionError), configuration mismatch, or
// invalid state.
func (f *Fleet) RestoreSession(r io.Reader) error {
	if f.closed.Load() {
		return ErrClosed
	}
	var env sessionEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("fleet: session snapshot decode: %w", err)
	}
	if env.Version != snapshotVersion {
		return &VersionError{Got: env.Version, Want: snapshotVersion}
	}
	if env.Meta != f.meta() {
		return fmt.Errorf("fleet: session snapshot config %+v does not match fleet %+v", env.Meta, f.meta())
	}
	if env.State.ID < 0 {
		return fmt.Errorf("fleet: snapshot session id %d", env.State.ID)
	}
	sh := f.shardOf(env.State.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	id := env.State.ID
	if _, dup := sh.sessions[id]; dup {
		return fmt.Errorf("fleet: session %d already exists", id)
	}
	if _, dup := sh.parked[id]; dup {
		return fmt.Errorf("fleet: session %d already exists (disconnected)", id)
	}
	s, err := f.buildSession(sh, env.State, f.base)
	if err != nil {
		return err
	}
	if env.State.Parked {
		sh.parked[id] = s
	} else {
		if err := sh.catchUp(s, f.base); err != nil {
			return err
		}
		sh.insert(s)
	}
	mtr.restores.Inc()
	mtr.sessions.Add(1)
	return nil
}

// captureShard exports shard i's whole population. Caller holds the shard
// lock.
func (f *Fleet) captureShard(sh *shard) shardEnvelope {
	env := shardEnvelope{
		Version:        snapshotVersion,
		Meta:           f.meta(),
		Shard:          sh.idx,
		Base:           f.base,
		Apps:           append([]string(nil), sh.apps...),
		Device:         sh.devcfg,
		Batches:        sh.batches,
		BatchRows:      sh.batchRows,
		MaxRows:        sh.maxRows,
		VideoDecodes:   sh.videoDecodes,
		VideoFrames:    sh.videoFrames,
		VideoConcealed: sh.videoConcealed,
	}
	for _, id := range sh.order {
		env.Sessions = append(env.Sessions, f.captureSession(sh.sessions[id], true))
	}
	parked := make([]int, 0, len(sh.parked))
	for id := range sh.parked {
		parked = append(parked, id)
	}
	sort.Ints(parked)
	for _, id := range parked {
		env.Sessions = append(env.Sessions, f.captureSession(sh.parked[id], false))
	}
	return env
}

// SnapshotShard writes shard i's whole session population and accounting
// to w.
func (f *Fleet) SnapshotShard(i int, w io.Writer) error {
	if i < 0 || i >= len(f.shards) {
		return fmt.Errorf("fleet: shard %d of %d", i, len(f.shards))
	}
	sh := f.shards[i]
	sh.mu.Lock()
	env := f.captureShard(sh)
	sh.mu.Unlock()
	if err := gob.NewEncoder(w).Encode(&env); err != nil {
		return err
	}
	mtr.snapshots.Inc()
	return nil
}

// validateShardEnvelope checks an envelope against target shard sh and
// builds its sessions without committing anything.
func (f *Fleet) validateShardEnvelope(sh *shard, env *shardEnvelope, base int) (live, parked []*session, err error) {
	if env.Shard != sh.idx {
		return nil, nil, fmt.Errorf("fleet: shard snapshot for stripe %d, want %d", env.Shard, sh.idx)
	}
	if env.Device != sh.devcfg {
		return nil, nil, fmt.Errorf("fleet: shard snapshot device class %+v does not match shard %+v", env.Device, sh.devcfg)
	}
	if len(env.Apps) != len(sh.apps) {
		return nil, nil, fmt.Errorf("fleet: shard snapshot catalog has %d apps, shard %d", len(env.Apps), len(sh.apps))
	}
	for k, name := range env.Apps {
		if sh.apps[k] != name {
			return nil, nil, fmt.Errorf("fleet: shard snapshot catalog differs at %q", name)
		}
	}
	if env.Batches < 0 || env.BatchRows < 0 || env.MaxRows < 0 {
		return nil, nil, fmt.Errorf("fleet: shard snapshot has negative accounting")
	}
	seen := map[int]bool{}
	for _, st := range env.Sessions {
		if seen[st.ID] {
			return nil, nil, fmt.Errorf("fleet: shard snapshot has duplicate session %d", st.ID)
		}
		seen[st.ID] = true
		s, err := f.buildSession(sh, st, base)
		if err != nil {
			return nil, nil, err
		}
		if st.Parked {
			parked = append(parked, s)
		} else {
			live = append(live, s)
		}
	}
	return live, parked, nil
}

// commitShard replaces sh's population and accounting with the validated
// envelope contents. Caller holds sh.mu.
func (sh *shard) commitShard(env *shardEnvelope, live, parked []*session) {
	sh.sessions = make(map[int]*session, len(live))
	sh.order = sh.order[:0]
	for _, s := range live {
		sh.insert(s)
	}
	sh.parked = make(map[int]*session, len(parked))
	for _, s := range parked {
		sh.parked[s.id] = s
	}
	sh.batches = env.Batches
	sh.batchRows = env.BatchRows
	sh.maxRows = env.MaxRows
	sh.videoDecodes = env.VideoDecodes
	sh.videoFrames = env.VideoFrames
	sh.videoConcealed = env.VideoConcealed
}

// RestoreShard replaces shard i's whole population with a snapshot
// previously written by SnapshotShard — cross-process shard migration. The
// envelope is validated and every session built before anything is
// swapped; on error the shard is untouched. Live sessions snapshotted at
// an earlier fleet tick are caught up to the current tick.
func (f *Fleet) RestoreShard(i int, r io.Reader) error {
	if f.closed.Load() {
		return ErrClosed
	}
	if i < 0 || i >= len(f.shards) {
		return fmt.Errorf("fleet: shard %d of %d", i, len(f.shards))
	}
	var env shardEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("fleet: shard snapshot decode: %w", err)
	}
	if env.Version != snapshotVersion {
		return &VersionError{Got: env.Version, Want: snapshotVersion}
	}
	if env.Meta != f.meta() {
		return fmt.Errorf("fleet: shard snapshot config %+v does not match fleet %+v", env.Meta, f.meta())
	}
	sh := f.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	live, parked, err := f.validateShardEnvelope(sh, &env, f.base)
	if err != nil {
		return err
	}
	delta := len(live) + len(parked) - len(sh.sessions) - len(sh.parked)
	sh.commitShard(&env, live, parked)
	for _, s := range live {
		if err := sh.catchUp(s, f.base); err != nil {
			return err
		}
	}
	mtr.restores.Inc()
	mtr.sessions.Add(int64(delta))
	return nil
}

// Snapshot writes the whole fleet — every shard's population, accounting,
// and the tick clock — to w, for hot restart in a fresh process.
func (f *Fleet) Snapshot(w io.Writer) error {
	env := fleetEnvelope{Version: snapshotVersion, Meta: f.meta(), Base: f.base}
	for _, sh := range f.shards {
		sh.mu.Lock()
		env.Shards = append(env.Shards, f.captureShard(sh))
		sh.mu.Unlock()
	}
	if err := gob.NewEncoder(w).Encode(&env); err != nil {
		return err
	}
	mtr.snapshots.Inc()
	return nil
}

// Restore replaces the fleet's whole population and tick clock with a
// snapshot previously written by Snapshot. The target must be built with
// the same Config (Normalize'd scalars are checked via the envelope meta;
// shard device classes and catalogs via each shard envelope) and must not
// be started. Everything is validated and built before anything is
// committed; on error the fleet is untouched.
func (f *Fleet) Restore(r io.Reader) error {
	if f.closed.Load() {
		return ErrClosed
	}
	if f.started.Load() {
		return fmt.Errorf("fleet: restore on a live (started) fleet")
	}
	var env fleetEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("fleet: snapshot decode: %w", err)
	}
	if env.Version != snapshotVersion {
		return &VersionError{Got: env.Version, Want: snapshotVersion}
	}
	if env.Meta != f.meta() {
		return fmt.Errorf("fleet: snapshot config %+v does not match fleet %+v", env.Meta, f.meta())
	}
	if env.Base < 0 {
		return fmt.Errorf("fleet: snapshot at negative tick %d", env.Base)
	}
	if len(env.Shards) != len(f.shards) {
		return fmt.Errorf("fleet: snapshot has %d shards, fleet %d", len(env.Shards), len(f.shards))
	}
	type staged struct {
		live, parked []*session
	}
	stage := make([]staged, len(f.shards))
	for i := range f.shards {
		se := &env.Shards[i]
		if se.Base != env.Base {
			return fmt.Errorf("fleet: shard %d snapshot at tick %d, fleet snapshot at %d", i, se.Base, env.Base)
		}
		live, parked, err := f.validateShardEnvelope(f.shards[i], se, env.Base)
		if err != nil {
			return err
		}
		stage[i] = staged{live, parked}
	}
	var total int64
	for i, sh := range f.shards {
		sh.mu.Lock()
		total -= int64(len(sh.sessions) + len(sh.parked))
		sh.commitShard(&env.Shards[i], stage[i].live, stage[i].parked)
		total += int64(len(stage[i].live) + len(stage[i].parked))
		sh.mu.Unlock()
	}
	f.base = env.Base
	mtr.restores.Inc()
	mtr.sessions.Add(total)
	return nil
}

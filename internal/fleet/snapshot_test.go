package fleet

import (
	"bytes"
	"encoding/gob"
	"errors"
	"strings"
	"testing"
)

// snapFleet builds a detCfg fleet advanced `ticks` rounds.
func snapFleet(t *testing.T, ticks int) *Fleet {
	t.Helper()
	f, err := New(detCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestSessionSnapshotRoundTrip: snapshot → remove → restore mid-run is
// invisible — the finished run carries the churn-free fingerprint.
func TestSessionSnapshotRoundTrip(t *testing.T) {
	cfg := detCfg()
	oracle, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := snapFleet(t, 20)
	for _, id := range []int{0, 7, 41} {
		var buf bytes.Buffer
		if err := f.SnapshotSession(id, &buf); err != nil {
			t.Fatal(err)
		}
		if err := f.RemoveSession(id); err != nil {
			t.Fatal(err)
		}
		if err := f.RestoreSession(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.RunTicks(cfg.Ticks - 20); err != nil {
		t.Fatal(err)
	}
	if got, want := f.Stats().Fingerprint(), oracle.Fingerprint(); got != want {
		t.Fatalf("round-tripped fingerprint %s, oracle %s", got, want)
	}
}

// TestSessionSnapshotParkedStaysParked: a disconnected session migrates as
// disconnected and still needs an explicit Reconnect.
func TestSessionSnapshotParkedStaysParked(t *testing.T) {
	f := snapFleet(t, 10)
	if err := f.Disconnect(5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.SnapshotSession(5, &buf); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveSession(5); err != nil {
		t.Fatal(err)
	}
	if err := f.RestoreSession(&buf); err != nil {
		t.Fatal(err)
	}
	if !f.Disconnected(5) {
		t.Fatal("parked snapshot restored as connected")
	}
	if err := f.Reconnect(5); err != nil {
		t.Fatal(err)
	}
}

// TestSessionSnapshotLagRestore: a snapshot taken at an earlier tick
// restores into a later fleet by replaying the gap — equivalent to never
// leaving.
func TestSessionSnapshotLagRestore(t *testing.T) {
	cfg := detCfg()
	oracle, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := snapFleet(t, 15)
	var buf bytes.Buffer
	if err := f.SnapshotSession(11, &buf); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveSession(11); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunTicks(10); err != nil {
		t.Fatal(err)
	}
	if err := f.RestoreSession(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunTicks(cfg.Ticks - 25); err != nil {
		t.Fatal(err)
	}
	if got, want := f.Stats().Fingerprint(), oracle.Fingerprint(); got != want {
		t.Fatalf("lagged restore fingerprint %s, oracle %s", got, want)
	}
}

func TestSessionSnapshotErrors(t *testing.T) {
	f := snapFleet(t, 10)
	before := f.Stats().Fingerprint()

	if err := f.SnapshotSession(detCfg().Sessions+3, &bytes.Buffer{}); err == nil {
		t.Fatal("snapshot of unknown session accepted")
	}

	var buf bytes.Buffer
	if err := f.SnapshotSession(4, &buf); err != nil {
		t.Fatal(err)
	}
	pristine := append([]byte(nil), buf.Bytes()...)

	// Duplicate id: the session still exists.
	if err := f.RestoreSession(bytes.NewReader(pristine)); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate restore: %v", err)
	}
	// Truncated and garbage streams.
	if err := f.RestoreSession(bytes.NewReader(pristine[:len(pristine)/3])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if err := f.RestoreSession(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage stream accepted")
	}
	// Wrong wire version surfaces as the typed error.
	var vbuf bytes.Buffer
	if err := gob.NewEncoder(&vbuf).Encode(&sessionEnvelope{Version: snapshotVersion + 2}); err != nil {
		t.Fatal(err)
	}
	var verr *VersionError
	if err := f.RestoreSession(&vbuf); !errors.As(err, &verr) {
		t.Fatalf("future version: %v", err)
	} else if verr.Got != snapshotVersion+2 || verr.Want != snapshotVersion {
		t.Fatalf("VersionError %+v", verr)
	}
	// Snapshot from a differently-configured fleet is rejected.
	other := detCfg()
	other.Seed = 999
	g, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.RunTicks(10); err != nil {
		t.Fatal(err)
	}
	var obuf bytes.Buffer
	if err := g.SnapshotSession(4, &obuf); err != nil {
		t.Fatal(err)
	}
	if err := f.RestoreSession(&obuf); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("meta mismatch: %v", err)
	}
	// A snapshot claiming an absurd RNG draw count is rejected instead of
	// spinning the generator fast-forward (FuzzSnapshotRestore regression).
	var env sessionEnvelope
	if err := gob.NewDecoder(bytes.NewReader(pristine)).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveSession(4); err != nil {
		t.Fatal(err)
	}
	env.State.Draws = 1 << 60
	var dbuf bytes.Buffer
	if err := gob.NewEncoder(&dbuf).Encode(&env); err != nil {
		t.Fatal(err)
	}
	if err := f.RestoreSession(&dbuf); err == nil || !strings.Contains(err.Error(), "RNG draws") {
		t.Fatalf("absurd draw count: %v", err)
	}
	if err := f.RestoreSession(bytes.NewReader(pristine)); err != nil {
		t.Fatal(err)
	}

	if got := f.Stats().Fingerprint(); got != before {
		t.Fatalf("error paths mutated the fleet: %s -> %s", before, got)
	}
}

// TestShardSnapshotRoundTrip: in-place shard restore is invisible, and an
// envelope restored into the wrong stripe is rejected without touching it.
func TestShardSnapshotRoundTrip(t *testing.T) {
	cfg := detCfg()
	oracle, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := snapFleet(t, 25)
	var buf bytes.Buffer
	if err := f.SnapshotShard(2, &buf); err != nil {
		t.Fatal(err)
	}
	pristine := append([]byte(nil), buf.Bytes()...)
	if err := f.RestoreShard(3, bytes.NewReader(pristine)); err == nil || !strings.Contains(err.Error(), "stripe") {
		t.Fatalf("cross-stripe restore: %v", err)
	}
	if err := f.RestoreShard(7, bytes.NewReader(pristine)); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if err := f.RestoreShard(2, bytes.NewReader(pristine)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunTicks(cfg.Ticks - 25); err != nil {
		t.Fatal(err)
	}
	if got, want := f.Stats().Fingerprint(), oracle.Fingerprint(); got != want {
		t.Fatalf("shard round trip fingerprint %s, oracle %s", got, want)
	}
}

// TestFleetSnapshotMigration is the hot-restart story: snapshot a running
// fleet, build a brand-new one from the same config in a "fresh process",
// restore, continue — the composite run equals the uninterrupted one.
func TestFleetSnapshotMigration(t *testing.T) {
	cfg := detCfg()
	oracle, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := snapFleet(t, 20)
	var buf bytes.Buffer
	if err := f.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.RunTicks(cfg.Ticks - 20); err != nil {
		t.Fatal(err)
	}
	if got, want := fresh.Stats().Fingerprint(), oracle.Fingerprint(); got != want {
		t.Fatalf("migrated fingerprint %s, oracle %s", got, want)
	}
}

func TestFleetRestoreErrors(t *testing.T) {
	f := snapFleet(t, 10)
	var buf bytes.Buffer
	if err := f.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := append([]byte(nil), buf.Bytes()...)
	before := f.Stats().Fingerprint()

	if err := f.Restore(bytes.NewReader(pristine[:40])); err == nil {
		t.Fatal("truncated fleet snapshot accepted")
	}
	var vbuf bytes.Buffer
	if err := gob.NewEncoder(&vbuf).Encode(&fleetEnvelope{Version: -1}); err != nil {
		t.Fatal(err)
	}
	var verr *VersionError
	if err := f.Restore(&vbuf); !errors.As(err, &verr) {
		t.Fatalf("bad version: %v", err)
	}
	// Shard-count mismatch: same scalars, different stripe layout.
	other := detCfg()
	other.Shards = 3
	g, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	var obuf bytes.Buffer
	if err := g.Snapshot(&obuf); err != nil {
		t.Fatal(err)
	}
	if err := f.Restore(&obuf); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("shard-count mismatch: %v", err)
	}
	if got := f.Stats().Fingerprint(); got != before {
		t.Fatalf("error paths mutated the fleet: %s -> %s", before, got)
	}

	// A started (live-mode) fleet refuses whole-fleet restore.
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if err := f.Restore(bytes.NewReader(pristine)); err == nil || !strings.Contains(err.Error(), "live") {
		t.Fatalf("restore on live fleet: %v", err)
	}
}

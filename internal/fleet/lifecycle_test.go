package fleet

import (
	"errors"
	"strings"
	"testing"
)

// Focused lifecycle-API tests: the edge semantics the chaos harness drives
// stochastically, pinned one by one.

func lifecycleFleet(t *testing.T, ticks int) *Fleet {
	t.Helper()
	f, err := New(detCfg())
	if err != nil {
		t.Fatal(err)
	}
	if ticks > 0 {
		if _, err := f.RunTicks(ticks); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestDisconnectRejections(t *testing.T) {
	f := lifecycleFleet(t, 5)
	if err := f.Disconnect(detCfg().Sessions + 7); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown id: %v", err)
	}
	if err := f.Disconnect(3); err != nil {
		t.Fatal(err)
	}
	if err := f.Disconnect(3); err == nil || !strings.Contains(err.Error(), "already disconnected") {
		t.Fatalf("double disconnect: %v", err)
	}
}

func TestReconnectRejections(t *testing.T) {
	f := lifecycleFleet(t, 5)
	if err := f.Reconnect(detCfg().Sessions + 7); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown id: %v", err)
	}
	// Reconnect of a connected session is an API misuse, not a no-op.
	if err := f.Reconnect(3); err == nil || !strings.Contains(err.Error(), "disconnect before reconnect") {
		t.Fatalf("reconnect while connected: %v", err)
	}
}

func TestLifecycleAfterClose(t *testing.T) {
	f := lifecycleFleet(t, 0)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Disconnect(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Disconnect after Close: %v", err)
	}
	if err := f.Reconnect(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Reconnect after Close: %v", err)
	}
}

// TestDisconnectedSessionsAccounting: parked sessions still count toward
// Sessions() (they exist, they're just offline) and show up in
// Disconnected; removal works on either side of the park.
func TestDisconnectedSessionsAccounting(t *testing.T) {
	f := lifecycleFleet(t, 5)
	total := detCfg().Sessions
	if got := f.Sessions(); got != total {
		t.Fatalf("Sessions() = %d, want %d", got, total)
	}
	for _, id := range []int{2, 9, 30} {
		if err := f.Disconnect(id); err != nil {
			t.Fatal(err)
		}
		if !f.Disconnected(id) {
			t.Fatalf("session %d not reported disconnected", id)
		}
	}
	if f.Disconnected(4) {
		t.Fatal("connected session reported disconnected")
	}
	if got := f.Sessions(); got != total {
		t.Fatalf("Sessions() = %d after parking, want %d", got, total)
	}
	// Removing a parked session tears it down like a live one.
	if err := f.RemoveSession(9); err != nil {
		t.Fatal(err)
	}
	if got := f.Sessions(); got != total-1 {
		t.Fatalf("Sessions() = %d after removing parked, want %d", got, total-1)
	}
	if f.Disconnected(9) {
		t.Fatal("removed session still reported disconnected")
	}
	// Its id is free again; AddSession of a *parked* id is still a dup.
	if err := f.AddSession(9); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSession(2); err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("AddSession of parked id: %v", err)
	}
}

// TestCatchUpEquivalence is the core determinism claim in isolation: park
// a third of the fleet mid-run, run more rounds without them, reconnect —
// the final fingerprint is the churn-free one, because catch-up replays
// the missed rounds on the identical RNG stream.
func TestCatchUpEquivalence(t *testing.T) {
	cfg := detCfg()
	oracle, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunTicks(10); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < cfg.Sessions; id += 3 {
		if err := f.Disconnect(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.RunTicks(cfg.Ticks - 10); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < cfg.Sessions; id += 3 {
		if err := f.Reconnect(id); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := f.Stats().Fingerprint(), oracle.Fingerprint(); got != want {
		t.Fatalf("caught-up fingerprint %s, churn-free %s", got, want)
	}
}

// TestParkedSessionsFrozen: a fully-parked shard does no batching work,
// and a parked session's device state does not advance.
func TestParkedSessionsFrozen(t *testing.T) {
	cfg := detCfg()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunTicks(5); err != nil {
		t.Fatal(err)
	}
	before := f.Stats()
	for id := 0; id < cfg.Sessions; id++ {
		if err := f.Disconnect(id); err != nil {
			t.Fatal(err)
		}
	}
	mid, err := f.RunTicks(7)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Observations != before.Observations {
		t.Fatalf("parked fleet still observed: %d -> %d", before.Observations, mid.Observations)
	}
	if mid.BatchRows != before.BatchRows {
		t.Fatalf("parked fleet still classified rows: %d -> %d", before.BatchRows, mid.BatchRows)
	}
	// Logical rounds keep counting — that's what keeps Batches invariant
	// under churn once everyone reconnects.
	if mid.Batches == before.Batches {
		t.Fatalf("logical batch rounds stopped counting while parked")
	}
}

package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"time"

	"affectedge/internal/emotion"
	"affectedge/internal/parallel"
	"affectedge/internal/stream"
)

// Stats aggregates a fleet over every session: the manager-side control
// counters and the device-side Fig-10 measurements, plus the batching and
// backpressure behavior of the serving plane. All fields except WallTime
// are deterministic for a deterministic run (see Fingerprint).
type Stats struct {
	Sessions        int           `json:"sessions"`
	Shards          int           `json:"shards"`
	Ticks           int           `json:"ticks"`
	VirtualDuration time.Duration `json:"virtual_duration_ns"`

	// Control plane (summed over session managers).
	Observations      int64 `json:"observations"`
	Discarded         int64 `json:"discarded"`
	AttentionSwitches int64 `json:"attention_switches"`
	MoodSwitches      int64 `json:"mood_switches"`
	ModeSwitches      int64 `json:"mode_switches"`

	// Device plane (summed over session devices; PeakRAM is the max).
	Launches      int64         `json:"launches"`
	ColdStarts    int64         `json:"cold_starts"`
	WarmStarts    int64         `json:"warm_starts"`
	BytesLoaded   int64         `json:"bytes_loaded"`
	LoadingTime   time.Duration `json:"loading_time_ns"`
	Kills         int64         `json:"kills"`
	KillsByLimit  int64         `json:"kills_by_limit"`
	KillsByMemory int64         `json:"kills_by_memory"`
	PeakRAM       int64         `json:"peak_ram_bytes"`

	// Serving plane. Batches counts inference rounds and BatchRows the
	// classified rows, so BatchRows/Batches is the realized coalescing
	// factor. Drops and LateDrops are live-path only (always zero for
	// deterministic runs).
	Batches      int64 `json:"batches"`
	BatchRows    int64 `json:"batch_rows"`
	MaxBatchRows int   `json:"max_batch_rows"`
	Drops        int64 `json:"drops"`
	LateDrops    int64 `json:"late_drops"`

	// Video probe plane (deterministic runs with Config.VideoEvery > 0).
	// VideoDecodes counts per-session probe decodes, VideoFrames the
	// frames they produced (decoded plus concealed), and VideoConcealed
	// the concealed subset. Deterministic, but excluded from Fingerprint:
	// the fingerprint field list is frozen by pinned golden values, and
	// the probe never writes session state, so runs differing only in
	// VideoEvery fingerprint identically (see TestVideoProbeTransparent).
	VideoDecodes   int64 `json:"video_decodes"`
	VideoFrames    int64 `json:"video_frames"`
	VideoConcealed int64 `json:"video_concealed"`

	// WallTime is real elapsed time; excluded from Fingerprint.
	WallTime time.Duration `json:"wall_time_ns"`
}

// Fingerprint hashes the frozen deterministic field list, little-endian,
// in struct order. Two runs with the same Config produce the same
// fingerprint at any parallel.SetWorkers count and with either inference
// granularity (Config.SerialInfer) — the integer kernels make batched and
// serial evaluation bitwise identical. WallTime and the video probe
// counters stay outside the hash: the list was frozen before the probe
// existed, and the probe is read-only on fingerprinted state.
func (s *Stats) Fingerprint() string {
	h := sha256.New()
	var b [8]byte
	put := func(vals ...int64) {
		for _, v := range vals {
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			h.Write(b[:])
		}
	}
	put(int64(s.Sessions), int64(s.Shards), int64(s.Ticks), int64(s.VirtualDuration),
		s.Observations, s.Discarded,
		s.AttentionSwitches, s.MoodSwitches, s.ModeSwitches,
		s.Launches, s.ColdStarts, s.WarmStarts,
		s.BytesLoaded, int64(s.LoadingTime),
		s.Kills, s.KillsByLimit, s.KillsByMemory, s.PeakRAM,
		s.Batches, s.BatchRows, int64(s.MaxBatchRows),
		s.Drops, s.LateDrops)
	return hex.EncodeToString(h.Sum(nil))
}

// Run builds a fleet from cfg and advances it cfg.Ticks deterministic
// rounds. The result is bit-identical at any worker count: shards are
// independent (sessions never interact across shards), each shard's
// sessions advance in sorted-id order, and every session's RNG is
// sub-seeded from (Seed, id) alone.
func Run(cfg Config) (*Stats, error) {
	start := time.Now()
	f, err := New(cfg)
	if err != nil {
		return nil, err
	}
	st, err := f.RunTicks(f.cfg.Ticks)
	if err != nil {
		return nil, err
	}
	st.WallTime = time.Since(start)
	return st, nil
}

// RunTicks advances the deterministic simulation by ticks observation
// rounds, fanning shards out over the internal/parallel pool, and returns
// a stats snapshot. Successive calls continue virtual time. Not valid on
// a started (live-mode) or closed fleet.
func (f *Fleet) RunTicks(ticks int) (*Stats, error) {
	if f.started.Load() {
		return nil, errors.New("fleet: deterministic run on a live (started) fleet")
	}
	if f.closed.Load() {
		return nil, ErrClosed
	}
	if ticks < 0 {
		return nil, fmt.Errorf("fleet: %d ticks", ticks)
	}
	base := f.base
	err := parallel.ForEach(len(f.shards), func(i int) error {
		sh := f.shards[i]
		for t := 0; t < ticks; t++ {
			if err := sh.tick(base + t); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	f.base += ticks
	return f.Stats(), nil
}

// tick advances every session on the shard one observation round: step the
// latent emotion, synthesize the feature vector, classify the whole shard
// in one coalesced int8 batch, then feed each session's control loop and
// app-launch schedule. Runs single-goroutine per shard; no locking needed
// beyond the ForEach partition.
func (sh *shard) tick(t int) error {
	m := len(sh.order)
	if m+len(sh.parked) == 0 {
		return nil
	}
	dim := sh.f.cfg.FeatureDim
	now := sh.f.cfg.TickEvery * time.Duration(t+1)
	if m > 0 {
		sh.feat = growFloats(sh.feat, m*dim)
		sh.batch = sh.batch[:0]
		for k, id := range sh.order {
			s := sh.sessions[id]
			s.stepLatent(t, sh.f.cfg.SwitchEvery)
			if err := sh.ingestRow(sh.feat[k*dim:(k+1)*dim], s); err != nil {
				return err
			}
			sh.batch = append(sh.batch, s)
		}
		if err := sh.infer(0, m); err != nil {
			return err
		}
		classes := len(sh.f.stream.Protos)
		for k, s := range sh.batch {
			if err := sh.applyRow(s, now, sh.logits[k*classes:(k+1)*classes]); err != nil {
				return err
			}
			if err := s.maybeLaunch(sh, t, now); err != nil {
				return err
			}
		}
		if ve := sh.f.cfg.VideoEvery; ve > 0 && (t+1)%ve == 0 {
			if err := sh.probeVideo(); err != nil {
				return err
			}
		}
	}
	// Logical accounting over the whole population (live plus parked):
	// Batches and MaxBatchRows count the round as if nobody were parked,
	// and catch-up replay backfills the missing BatchRows, which is what
	// keeps Stats.Fingerprint bit-stable under any churn schedule.
	sh.countBatch(m, m+len(sh.parked))
	return nil
}

// ingestRow lands one synthesized observation for s in dst. Whole-buffer
// mode (ChunkBytes == 0) samples straight into dst. Chunked mode streams
// the observation as ChunkBytes/8-value fragments through the shard's
// bounded FIFO — the deterministic twin of a network ingest hop — draining
// into dst whenever the ring refuses a value. The FIFO only copies, so the
// landed row is bit-identical either way and run fingerprints match the
// whole-buffer feed exactly.
func (sh *shard) ingestRow(dst []float64, s *session) error {
	f := sh.f
	if f.cfg.ChunkBytes <= 0 {
		return f.stream.Sample(dst, s.latent, f.cfg.Noise, s.rng)
	}
	chunk := f.cfg.ChunkBytes / 8
	if chunk <= 0 {
		chunk = 1
	}
	if sh.obsFIFO == nil {
		q, err := stream.New[float64](chunk)
		if err != nil {
			return err
		}
		sh.obsFIFO = q
	}
	sh.rowBuf = growFloats(sh.rowBuf, len(dst))
	fill := 0
	err := f.stream.SampleChunks(s.latent, f.cfg.Noise, s.rng, sh.rowBuf, chunk, func(frag []float64) error {
		for len(frag) > 0 {
			n, werr := sh.obsFIFO.TryWrite(frag)
			if werr != nil && !errors.Is(werr, stream.ErrBackpressure) {
				return werr
			}
			frag = frag[n:]
			if len(frag) > 0 { // ring full: drain into the batch row
				r, rerr := sh.obsFIFO.TryRead(dst[fill:])
				if rerr != nil {
					return rerr
				}
				fill += r
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for fill < len(dst) {
		r, rerr := sh.obsFIFO.TryRead(dst[fill:])
		if rerr != nil {
			return rerr
		}
		if r == 0 {
			return fmt.Errorf("fleet: chunked ingest underflow at %d/%d", fill, len(dst))
		}
		fill += r
	}
	return nil
}

// stepLatent advances the session's hidden emotional state: at the
// scheduled tick it jumps to a uniformly random label and draws the next
// dwell time (mean switchEvery ticks).
func (s *session) stepLatent(t, switchEvery int) {
	if t >= s.nextSwitch {
		s.latent = emotion.Label(s.rng.Intn(emotion.NumLabels))
		s.nextSwitch = t + 1 + s.rng.Intn(2*switchEvery)
	}
}

// maybeLaunch fires the session's app-launch schedule: at the scheduled
// tick it foregrounds an app picked by the traffic model from the shard's
// catalog (mean gap LaunchEvery ticks under the default model), exercising
// the device's cold/warm start paths and — under memory pressure — its
// mood-ranked kill policy. Both draws go through the session RNG, so the
// schedule is deterministic and replayable.
func (s *session) maybeLaunch(sh *shard, t int, now time.Duration) error {
	if t < s.nextLaunch {
		return nil
	}
	f := sh.f
	app := f.cfg.Traffic.PickApp(s.rng, sh.apps, t)
	if _, err := s.dev.Launch(now, app); err != nil {
		return err
	}
	s.nextLaunch = t + f.cfg.Traffic.NextGap(s.rng, f.cfg.LaunchEvery, t)
	return nil
}

// Stats snapshots the fleet's aggregate state. Safe concurrently with the
// live path (locks each shard in turn); on the deterministic path it is
// called between RunTicks rounds. Aggregation is order-independent (sums
// and maxima), so snapshots are deterministic regardless of shard count.
func (f *Fleet) Stats() *Stats {
	st := &Stats{
		Shards:          len(f.shards),
		Ticks:           f.base,
		VirtualDuration: f.cfg.TickEvery * time.Duration(f.base),
	}
	accumulate := func(s *session) {
		observed, discarded := s.mgr.Stats()
		st.Observations += int64(observed)
		st.Discarded += int64(discarded)
		attn, mood, mode := s.mgr.Switches()
		st.AttentionSwitches += int64(attn)
		st.MoodSwitches += int64(mood)
		st.ModeSwitches += int64(mode)
		dm := s.dev.Metrics()
		st.Launches += int64(dm.Launches)
		st.ColdStarts += int64(dm.ColdStarts)
		st.WarmStarts += int64(dm.WarmStarts)
		st.BytesLoaded += dm.BytesLoaded
		st.LoadingTime += dm.LoadingTime
		st.Kills += int64(dm.Kills)
		st.KillsByLimit += int64(dm.KillsByLimit)
		st.KillsByMemory += int64(dm.KillsByMemory)
		if dm.PeakRAM > st.PeakRAM {
			st.PeakRAM = dm.PeakRAM
		}
	}
	for _, sh := range f.shards {
		sh.mu.Lock()
		st.Sessions += len(sh.sessions) + len(sh.parked)
		st.Batches += sh.batches
		st.BatchRows += sh.batchRows
		if sh.maxRows > st.MaxBatchRows {
			st.MaxBatchRows = sh.maxRows
		}
		st.VideoDecodes += sh.videoDecodes
		st.VideoFrames += sh.videoFrames
		st.VideoConcealed += sh.videoConcealed
		for _, id := range sh.order {
			accumulate(sh.sessions[id])
		}
		// Parked sessions still count; sums are order-independent, but
		// iterate sorted anyway so debug walks are reproducible.
		parked := make([]int, 0, len(sh.parked))
		for id := range sh.parked {
			parked = append(parked, id)
		}
		sort.Ints(parked)
		for _, id := range parked {
			accumulate(sh.parked[id])
		}
		sh.mu.Unlock()
	}
	st.Drops = f.drops.Load()
	st.LateDrops = f.late.Load()
	return st
}

package fleet

import (
	"testing"

	"affectedge/internal/parallel"
)

// detCfg is large enough to stripe unevenly and exercise switches, kills,
// and discards, small enough for -short.
func detCfg() Config {
	return Config{
		Sessions:    60,
		Shards:      6,
		Ticks:       50,
		Seed:        7,
		LaunchEvery: 5,
	}
}

// TestDeterminismAcrossWorkers pins the repository-wide contract for the
// fleet: a simulated run is bit-identical at any parallel worker count,
// because shards are independent, sessions advance in sorted-id order, and
// every RNG is sub-seeded from (Seed, id) alone.
func TestDeterminismAcrossWorkers(t *testing.T) {
	fps := map[int]string{}
	for _, workers := range []int{1, 2, 8} {
		defer parallel.SetWorkers(parallel.SetWorkers(workers))
		st, err := Run(detCfg())
		if err != nil {
			t.Fatal(err)
		}
		fps[workers] = st.Fingerprint()
	}
	if fps[1] != fps[2] || fps[1] != fps[8] {
		t.Fatalf("fingerprints diverge across worker counts: %v", fps)
	}
}

// TestDeterminismBatchedVsSerial pins that coalesced batched inference is
// bitwise identical to per-session serial evaluation: the int8 kernels
// accumulate in exact integer arithmetic and share the dequant path, so
// batching is purely a throughput decision.
func TestDeterminismBatchedVsSerial(t *testing.T) {
	batched, err := Run(detCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := detCfg()
	cfg.SerialInfer = true
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b, s := batched.Fingerprint(), serial.Fingerprint(); b != s {
		t.Fatalf("batched fingerprint %s != serial %s\nbatched %+v\nserial  %+v", b, s, batched, serial)
	}
}

// TestDeterminismResumedTicks pins that virtual time composes: one 50-tick
// run equals a 20-tick run resumed for 30 more.
func TestDeterminismResumedTicks(t *testing.T) {
	whole, err := Run(detCfg())
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(detCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunTicks(20); err != nil {
		t.Fatal(err)
	}
	split, err := f.RunTicks(30)
	if err != nil {
		t.Fatal(err)
	}
	if w, s := whole.Fingerprint(), split.Fingerprint(); w != s {
		t.Fatalf("50 ticks %s != 20+30 ticks %s", w, s)
	}
}

// TestDeterminismSeedSensitivity: different seeds must explore different
// trajectories — a constant fingerprint would mean the seed is dead.
func TestDeterminismSeedSensitivity(t *testing.T) {
	a, err := Run(detCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := detCfg()
	cfg.Seed = 8
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("seeds 7 and 8 produced identical runs")
	}
}

package fleet

import (
	"errors"
	"testing"
	"time"

	"affectedge/internal/obs"
)

// TestObserveBatchEquivalence pins the batched submission path against the
// per-observation one: the same seeded traffic queued via ObserveBatch
// (grouped requests, one enqueue per same-shard run) and via Observe (one
// enqueue per observation) must drain to identical fingerprints. MaxBatch
// is pinned to 1, so inference rounds are timing-independent and a grouped
// request's rows are classified exactly like singles.
func TestObserveBatchEquivalence(t *testing.T) {
	const (
		sessions = 8
		shards   = 2
		rounds   = 16
	)
	cfg := Config{
		Sessions:    sessions,
		Shards:      shards,
		Seed:        42,
		QueueDepth:  sessions * rounds, // no-drop sizing
		MaxBatch:    1,
		SerialInfer: true,
	}
	run := func(batched bool) string {
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dim := f.FeatureDim()
		x := make([]float64, dim)
		for k := range x {
			x[k] = 0.25 * float64(k%5)
		}
		// Queue everything before Start so drain order per session is the
		// submission order in both modes.
		for i := 0; i < rounds; i++ {
			at := time.Duration(i+1) * time.Second
			if batched {
				items := make([]Obs, sessions)
				statuses := make([]error, sessions)
				for id := 0; id < sessions; id++ {
					items[id] = Obs{ID: id, At: at, X: x}
				}
				if err := f.ObserveBatch(items, statuses); err != nil {
					t.Fatal(err)
				}
				for id, st := range statuses {
					if st != nil {
						t.Fatalf("round %d session %d: %v", i, id, st)
					}
				}
			} else {
				for id := 0; id < sessions; id++ {
					if err := f.Observe(id, at, x); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if err := f.Start(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		st := f.Stats()
		if want := int64(sessions * rounds); st.Observations != want {
			t.Fatalf("batched=%v: observations %d, want %d", batched, st.Observations, want)
		}
		if st.Drops != 0 || st.LateDrops != 0 {
			t.Fatalf("batched=%v: drops %d late %d, want 0", batched, st.Drops, st.LateDrops)
		}
		return st.Fingerprint()
	}
	if single, batch := run(false), run(true); single != batch {
		t.Fatalf("fingerprint divergence:\nper-observation %s\nbatched        %s", single, batch)
	}
}

// TestObserveBatchStatuses pins the per-item verdict contract: invalid
// items fail individually (dimension, unknown session), valid items past
// the queue's free space NACK with ErrBackpressure, and neither failure
// class poisons the rest of the batch.
func TestObserveBatchStatuses(t *testing.T) {
	reg := obs.NewRegistry()
	WireMetrics(reg.Scope("fleet"))
	defer WireMetrics(nil)
	cfg := Config{Sessions: 2, Shards: 1, QueueDepth: 4}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dim := f.FeatureDim()
	x := make([]float64, dim)

	if err := f.ObserveBatch(make([]Obs, 3), make([]error, 2)); err == nil {
		t.Fatal("statuses length mismatch accepted")
	}

	// No Start: the queue only fills. Depth 4 ⇒ items 5.. of the valid
	// run NACK. The batch interleaves two failure items up front.
	items := make([]Obs, 0, 8)
	items = append(items, Obs{ID: 0, At: time.Second, X: x[:3]}) // bad dim
	items = append(items, Obs{ID: 99, At: time.Second, X: x})    // unknown session
	for i := 0; i < 6; i++ {
		items = append(items, Obs{ID: i % 2, At: time.Duration(i+1) * time.Second, X: x})
	}
	statuses := make([]error, len(items))
	if err := f.ObserveBatch(items, statuses); err != nil {
		t.Fatal(err)
	}
	if statuses[0] == nil || errors.Is(statuses[0], ErrBackpressure) {
		t.Errorf("bad-dim status = %v, want a dimension error", statuses[0])
	}
	if !errors.Is(statuses[1], ErrUnknownSession) {
		t.Errorf("unknown-session status = %v, want ErrUnknownSession", statuses[1])
	}
	var acked, nacked int
	for _, st := range statuses[2:] {
		switch {
		case st == nil:
			acked++
		case errors.Is(st, ErrBackpressure):
			nacked++
		default:
			t.Fatalf("unexpected status %v", st)
		}
	}
	if acked != 4 || nacked != 2 {
		t.Fatalf("acked %d nacked %d, want 4 and 2 (depth-4 queue)", acked, nacked)
	}
	st := f.Stats()
	if st.Drops != 2 {
		t.Errorf("stats drops %d, want 2", st.Drops)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("fleet.ingress"); got != 4 {
		t.Errorf("fleet.ingress %d, want 4", got)
	}
	if got := snap.Counter("fleet.drops"); got != 2 {
		t.Errorf("fleet.drops %d, want 2", got)
	}

	// Draining applies exactly the admitted items.
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().Observations; got != 4 {
		t.Errorf("observations %d after drain, want 4", got)
	}

	// After Close every status is ErrClosed and the call reports it.
	statuses = make([]error, 1)
	if err := f.ObserveBatch([]Obs{{ID: 0, At: time.Second, X: x}}, statuses); !errors.Is(err, ErrClosed) {
		t.Fatalf("ObserveBatch after Close: %v, want ErrClosed", err)
	}
	if !errors.Is(statuses[0], ErrClosed) {
		t.Fatalf("status after Close: %v, want ErrClosed", statuses[0])
	}
}

// TestObserveBatchOversizedRun feeds one grouped run bigger than MaxBatch
// through a single shard: the worker must cut it into MaxBatch-row
// inference rounds, so every admitted observation is applied and the
// max-batch envelope holds.
func TestObserveBatchOversizedRun(t *testing.T) {
	const n = 40
	cfg := Config{Sessions: 1, Shards: 1, QueueDepth: n, MaxBatch: 8}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, f.FeatureDim())
	items := make([]Obs, n)
	for i := range items {
		items[i] = Obs{ID: 0, At: time.Duration(i+1) * time.Second, X: x}
	}
	statuses := make([]error, n)
	if err := f.ObserveBatch(items, statuses); err != nil {
		t.Fatal(err)
	}
	for i, st := range statuses {
		if st != nil {
			t.Fatalf("item %d: %v", i, st)
		}
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Observations != n {
		t.Errorf("observations %d, want %d", st.Observations, n)
	}
	if st.MaxBatchRows > 8 {
		t.Errorf("max batch rows %d exceeds MaxBatch 8", st.MaxBatchRows)
	}
	if st.Batches < n/8 {
		t.Errorf("batches %d, want at least %d MaxBatch-row rounds", st.Batches, n/8)
	}
}

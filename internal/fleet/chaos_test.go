package fleet

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"affectedge/internal/parallel"
	"affectedge/internal/simd"
)

// Chaos harness: the session-lifecycle determinism contract says that NO
// interleaving of disconnect, reconnect, session/shard/fleet snapshot and
// restore — at any worker count, with or without the vector backend —
// changes a deterministic run's fingerprint, as long as every session is
// connected again when Stats is read. These tests drive randomized
// schedules of exactly those operations against a churn-free oracle run.

func chaosCfg() Config {
	return Config{
		Sessions:    48,
		Shards:      6,
		Ticks:       40,
		Seed:        11,
		SwitchEvery: 8,
		LaunchEvery: 5,
	}
}

// checkGoroutines snapshots the goroutine count and returns a closure that
// fails the test if the count has not returned to the baseline (retrying,
// since worker teardown finishes shortly after Close returns).
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		var after int
		for i := 0; i < 100; i++ {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

// chaosRun advances cfg.Ticks rounds one at a time, injecting a seeded
// random schedule of lifecycle and snapshot operations between rounds:
// disconnects, reconnects, session snapshot→remove→restore round trips,
// in-place shard round trips, and occasional whole-fleet migrations onto a
// freshly built fleet. Every parked session reconnects before the final
// Stats, so the result must match the churn-free run bit for bit.
func chaosRun(t *testing.T, cfg Config, opSeed int64) *Stats {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := rand.New(rand.NewSource(opSeed))
	var buf bytes.Buffer
	for tick := 0; tick < cfg.Ticks; tick++ {
		if _, err := f.RunTicks(1); err != nil {
			t.Fatal(err)
		}
		for n := ops.Intn(4); n > 0; n-- {
			id := ops.Intn(cfg.Sessions)
			switch ops.Intn(5) {
			case 0: // toggle connectivity
				if f.Disconnected(id) {
					err = f.Reconnect(id)
				} else {
					err = f.Disconnect(id)
				}
			case 1: // session migration round trip, parked or live
				buf.Reset()
				if err = f.SnapshotSession(id, &buf); err != nil {
					break
				}
				if err = f.RemoveSession(id); err != nil {
					break
				}
				err = f.RestoreSession(&buf)
			case 2: // in-place shard round trip
				sh := id % cfg.Shards
				buf.Reset()
				if err = f.SnapshotShard(sh, &buf); err != nil {
					break
				}
				err = f.RestoreShard(sh, &buf)
			case 3: // whole-fleet migration onto a fresh process image
				buf.Reset()
				if err = f.Snapshot(&buf); err != nil {
					break
				}
				var fresh *Fleet
				if fresh, err = New(cfg); err != nil {
					break
				}
				if err = fresh.Restore(&buf); err != nil {
					break
				}
				f = fresh
			case 4: // park a session across whatever the next ops do
				if !f.Disconnected(id) {
					err = f.Disconnect(id)
				}
			}
			if err != nil {
				t.Fatalf("tick %d: %v", tick, err)
			}
		}
	}
	for id := 0; id < cfg.Sessions; id++ {
		if f.Disconnected(id) {
			if err := f.Reconnect(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	return f.Stats()
}

// TestChurnFingerprintStable is the headline chaos pin: randomized
// churn/snapshot/restore schedules leave the fingerprint bit-identical to
// the churn-free oracle, across worker counts and with the SIMD backend on
// and off.
func TestChurnFingerprintStable(t *testing.T) {
	cfg := chaosCfg()
	for _, workers := range []int{1, 8} {
		for _, vec := range []bool{true, false} {
			defer parallel.SetWorkers(parallel.SetWorkers(workers))
			defer simd.SetEnabled(simd.SetEnabled(vec))
			oracle, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := oracle.Fingerprint()
			for _, opSeed := range []int64{1, 2, 3} {
				leak := checkGoroutines(t)
				st := chaosRun(t, cfg, opSeed)
				if got := st.Fingerprint(); got != want {
					t.Fatalf("workers=%d simd=%v opSeed=%d: chaos fingerprint %s, oracle %s\nchaos  %+v\noracle %+v",
						workers, vec, opSeed, got, want, st, oracle)
				}
				leak()
			}
		}
	}
}

// TestChaosLiveLifecycle exercises the lifecycle API on the live serving
// path: disconnects and reconnects race with Observe traffic, a parked
// session rejects observations like an unknown one, and Close still joins
// every worker goroutine.
func TestChaosLiveLifecycle(t *testing.T) {
	leak := checkGoroutines(t)
	cfg := chaosCfg()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	norm, _ := cfg.Normalize()
	x := make([]float64, norm.FeatureDim)
	churn := rand.New(rand.NewSource(42))
	for i := 0; i < 400; i++ {
		id := churn.Intn(cfg.Sessions)
		switch churn.Intn(4) {
		case 0:
			if f.Disconnected(id) {
				err = f.Reconnect(id)
			} else {
				err = f.Disconnect(id)
			}
			if err != nil {
				t.Fatal(err)
			}
		case 1: // snapshots may run concurrently with live traffic
			var buf bytes.Buffer
			if err := f.SnapshotSession(id, &buf); err != nil {
				t.Fatal(err)
			}
		default:
			err := f.Observe(id, time.Duration(i+1)*time.Millisecond, x)
			if err != nil && f.Disconnected(id) {
				// Parked sessions refuse intake; that's the contract.
				continue
			}
			if err != nil && err != ErrBackpressure {
				t.Fatal(err)
			}
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	leak()
}

// FuzzSnapshotRestore throws arbitrary bytes at all three restore entry
// points. The contract under fuzz: never panic, and a failed restore never
// half-applies — the fleet's fingerprint is bit-identical before and
// after any erroring call. Session id 0 is removed from the fixture fleet
// so the pristine session envelope in the seed corpus exercises the
// success path too.
func FuzzSnapshotRestore(fz *testing.F) {
	cfg := Config{
		Sessions:    10,
		Shards:      2,
		Ticks:       6,
		Seed:        5,
		LaunchEvery: 4,
	}
	fl, err := New(cfg)
	if err != nil {
		fz.Fatal(err)
	}
	if _, err := fl.RunTicks(cfg.Ticks); err != nil {
		fz.Fatal(err)
	}
	var session0, shard0, whole bytes.Buffer
	if err := fl.SnapshotSession(0, &session0); err != nil {
		fz.Fatal(err)
	}
	if err := fl.RemoveSession(0); err != nil {
		fz.Fatal(err)
	}
	if err := fl.SnapshotShard(0, &shard0); err != nil {
		fz.Fatal(err)
	}
	if err := fl.Snapshot(&whole); err != nil {
		fz.Fatal(err)
	}
	fz.Add(session0.Bytes())
	fz.Add(shard0.Bytes())
	fz.Add(whole.Bytes())
	fz.Add(session0.Bytes()[:len(session0.Bytes())/2]) // truncated mid-stream
	fz.Add([]byte{})
	fz.Add([]byte("not a gob stream at all"))
	if n := len(whole.Bytes()); n > 40 {
		flipped := append([]byte(nil), whole.Bytes()...)
		flipped[n/2] ^= 0x80
		fz.Add(flipped)
	}
	var futureVer bytes.Buffer
	if err := gob.NewEncoder(&futureVer).Encode(&sessionEnvelope{Version: snapshotVersion + 1}); err != nil {
		fz.Fatal(err)
	}
	fz.Add(futureVer.Bytes())

	fz.Fuzz(func(t *testing.T, data []byte) {
		before := fl.Stats().Fingerprint()
		if err := fl.RestoreSession(bytes.NewReader(data)); err != nil {
			if got := fl.Stats().Fingerprint(); got != before {
				t.Fatalf("failed RestoreSession mutated the fleet: %s -> %s", before, got)
			}
		} else {
			// A restore that decoded and validated is allowed to change the
			// fleet; evict whatever it installed so later inputs start from
			// a restorable population again.
			var env sessionEnvelope
			if derr := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); derr == nil {
				_ = fl.RemoveSession(env.State.ID)
			}
		}
		before = fl.Stats().Fingerprint()
		if err := fl.RestoreShard(0, bytes.NewReader(data)); err != nil {
			if got := fl.Stats().Fingerprint(); got != before {
				t.Fatalf("failed RestoreShard mutated the fleet: %s -> %s", before, got)
			}
		}
		before = fl.Stats().Fingerprint()
		if err := fl.Restore(bytes.NewReader(data)); err != nil {
			if got := fl.Stats().Fingerprint(); got != before {
				t.Fatalf("failed Restore mutated the fleet: %s -> %s", before, got)
			}
		}
	})
}

package fleet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"affectedge/internal/android"
	"affectedge/internal/emotion"
	"affectedge/internal/monkey"
)

// TrafficModel shapes a session's app-launch traffic on the deterministic
// path: how long until the next launch and which app it foregrounds.
// Implementations must be deterministic functions of their arguments (all
// randomness through the supplied session RNG) and safe for concurrent use
// from multiple shards — models carry no per-session state; the session
// itself holds the schedule.
type TrafficModel interface {
	// Name identifies the model ("uniform", "bursty", ...); snapshots
	// record it and restores reject a mismatch.
	Name() string
	// NextGap draws the tick gap to the session's next launch. mean is
	// Config.LaunchEvery, t the current tick. Must return >= 1 so the
	// schedule always advances.
	NextGap(rng *rand.Rand, mean, t int) int
	// PickApp selects the app to launch from the shard's catalog (always
	// non-empty, sorted).
	PickApp(rng *rand.Rand, apps []string, t int) string
}

// UniformTraffic is the default model and the historical behavior: apps
// uniform over the catalog, gaps uniform on [1, 2*mean]. Runs under it are
// bit-identical to runs before traffic models existed (the pinned golden
// fingerprints are its regression test).
type UniformTraffic struct{}

// Name implements TrafficModel.
func (UniformTraffic) Name() string { return "uniform" }

// NextGap implements TrafficModel.
func (UniformTraffic) NextGap(rng *rand.Rand, mean, t int) int { return 1 + rng.Intn(2*mean) }

// PickApp implements TrafficModel.
func (UniformTraffic) PickApp(rng *rand.Rand, apps []string, t int) string {
	return apps[rng.Intn(len(apps))]
}

// BurstyTraffic alternates tight launch bursts with long idle stretches:
// with probability 1/4 the next launch follows in 1-3 ticks (the user is
// actively bouncing between apps), otherwise the session idles for
// [mean, 3*mean) ticks. The long-run launch rate is close to uniform's but
// the arrival process is heavy-tailed, which is what stresses the device's
// process-limit kill path.
type BurstyTraffic struct{}

// Name implements TrafficModel.
func (BurstyTraffic) Name() string { return "bursty" }

// NextGap implements TrafficModel.
func (BurstyTraffic) NextGap(rng *rand.Rand, mean, t int) int {
	if rng.Intn(4) == 0 {
		return 1 + rng.Intn(3)
	}
	return mean + rng.Intn(2*mean)
}

// PickApp implements TrafficModel.
func (BurstyTraffic) PickApp(rng *rand.Rand, apps []string, t int) string {
	return apps[rng.Intn(len(apps))]
}

// DiurnalTraffic layers the monkey package's mood-phase timeline onto the
// fleet clock: the day is the phase list repeated, and the phase mood at
// the current virtual time scales launch activity — excited phases launch
// at twice the base rate, calm phases at half. App choice stays uniform;
// the phase structure (not app bias) is what this model adds.
type DiurnalTraffic struct {
	// Phases define one day; empty means monkey.DefaultConfig().Phases
	// (12 min excited, 8 min calm — the paper's compressed session).
	Phases []monkey.Phase
	// TickEvery converts ticks to the phase timeline's virtual time; zero
	// means one second per tick (the fleet default).
	TickEvery time.Duration
}

// Name implements TrafficModel.
func (DiurnalTraffic) Name() string { return "diurnal" }

func (d DiurnalTraffic) phases() []monkey.Phase {
	if len(d.Phases) > 0 {
		return d.Phases
	}
	return monkey.DefaultConfig().Phases
}

// mood returns the phase mood at tick t, wrapping the day.
func (d DiurnalTraffic) mood(t int) emotion.Mood {
	every := d.TickEvery
	if every <= 0 {
		every = time.Second
	}
	phases := d.phases()
	var day time.Duration
	for _, ph := range phases {
		day += ph.Duration
	}
	at := time.Duration(t) * every
	if day > 0 {
		at %= day
	}
	return monkey.PhaseMoodAt(phases, at)
}

// NextGap implements TrafficModel.
func (d DiurnalTraffic) NextGap(rng *rand.Rand, mean, t int) int {
	switch d.mood(t) {
	case emotion.Excited:
		return 1 + rng.Intn(mean)
	default:
		return 1 + rng.Intn(4*mean)
	}
}

// PickApp implements TrafficModel.
func (DiurnalTraffic) PickApp(rng *rand.Rand, apps []string, t int) string {
	return apps[rng.Intn(len(apps))]
}

// AdversarialTraffic is the worst case for the background manager: every
// launch picks from the heaviest quarter of the catalog (by resident
// footprint) and gaps are minimal, so the device lives at its process and
// memory limits and the kill policy fires constantly.
type AdversarialTraffic struct{}

// Name implements TrafficModel.
func (AdversarialTraffic) Name() string { return "adversarial" }

// NextGap implements TrafficModel.
func (AdversarialTraffic) NextGap(rng *rand.Rand, mean, t int) int { return 1 + rng.Intn(2) }

// PickApp implements TrafficModel.
func (AdversarialTraffic) PickApp(rng *rand.Rand, apps []string, t int) string {
	heavy := heaviestQuarter(apps)
	return heavy[rng.Intn(len(heavy))]
}

// heaviestQuarter returns the top len/4 (min 1) apps of the catalog subset
// by resident memory footprint, in deterministic order.
func heaviestQuarter(apps []string) []string {
	byName := android.CatalogByName()
	out := append([]string(nil), apps...)
	sort.SliceStable(out, func(i, j int) bool {
		return byName[out[i]].MemBytes > byName[out[j]].MemBytes
	})
	n := len(out) / 4
	if n < 1 {
		n = 1
	}
	return out[:n]
}

// TrafficByName resolves a fleetsim -traffic flag value to a model.
func TrafficByName(name string) (TrafficModel, error) {
	switch name {
	case "", "uniform":
		return UniformTraffic{}, nil
	case "bursty":
		return BurstyTraffic{}, nil
	case "diurnal":
		return DiurnalTraffic{}, nil
	case "adversarial":
		return AdversarialTraffic{}, nil
	}
	return nil, fmt.Errorf("fleet: unknown traffic model %q (want uniform|bursty|diurnal|adversarial)", name)
}

package fleet

import (
	"testing"

	"affectedge/internal/parallel"
)

// videoCfg keeps the probe cheap: a 4-frame QCIF clip every 2 ticks over
// 6 sessions, with fast latent switching so sessions actually visit
// different decoder modes during the run.
func videoCfg() Config {
	return Config{
		Sessions:    6,
		Shards:      3,
		Ticks:       10,
		Seed:        42,
		SwitchEvery: 2,
		LaunchEvery: 5,
		VideoEvery:  2,
		VideoFrames: 4,
	}
}

// TestVideoProbeCounts pins the probe schedule: every session decodes the
// clip on every VideoEvery-th tick, and each decode accounts for the full
// display timeline (decoded + concealed frames = clip length).
func TestVideoProbeCounts(t *testing.T) {
	cfg := videoCfg()
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rounds := cfg.Ticks / cfg.VideoEvery
	wantDecodes := int64(cfg.Sessions * rounds)
	if st.VideoDecodes != wantDecodes {
		t.Errorf("video decodes %d, want %d", st.VideoDecodes, wantDecodes)
	}
	if want := wantDecodes * int64(cfg.VideoFrames); st.VideoFrames != want {
		t.Errorf("video frames %d, want %d", st.VideoFrames, want)
	}
	if st.VideoConcealed < 0 || st.VideoConcealed > st.VideoFrames {
		t.Errorf("video concealed %d outside [0,%d]", st.VideoConcealed, st.VideoFrames)
	}
}

// TestVideoProbeDeterministicAcrossWorkers extends the repository-wide
// determinism contract to the video plane: the probe counters — which are
// outside the fingerprint — must themselves be bit-identical at any worker
// count.
func TestVideoProbeDeterministicAcrossWorkers(t *testing.T) {
	type triple struct{ d, f, c int64 }
	got := map[int]triple{}
	fps := map[int]string{}
	for _, workers := range []int{1, 8} {
		defer parallel.SetWorkers(parallel.SetWorkers(workers))
		st, err := Run(videoCfg())
		if err != nil {
			t.Fatal(err)
		}
		got[workers] = triple{st.VideoDecodes, st.VideoFrames, st.VideoConcealed}
		fps[workers] = st.Fingerprint()
	}
	if got[1] != got[8] {
		t.Errorf("video counters diverge across workers: %+v vs %+v", got[1], got[8])
	}
	if fps[1] != fps[8] {
		t.Errorf("fingerprints diverge across workers: %v", fps)
	}
}

// TestVideoProbeTransparent pins that the probe is read-only on session
// state: a run with the probe enabled fingerprints identically to the same
// run with it off. This is what lets the video counters live outside the
// frozen fingerprint field list.
func TestVideoProbeTransparent(t *testing.T) {
	on, err := Run(videoCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := videoCfg()
	cfg.VideoEvery = 0
	off, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.Fingerprint() != off.Fingerprint() {
		t.Fatalf("probe perturbed the run:\non  %+v\noff %+v", on, off)
	}
	if off.VideoDecodes != 0 || off.VideoFrames != 0 || off.VideoConcealed != 0 {
		t.Errorf("probe disabled but counters nonzero: %+v", off)
	}
	if on.VideoDecodes == 0 {
		t.Error("probe enabled but no decodes recorded")
	}
}

// TestVideoConfigValidation covers the probe's Normalize paths.
func TestVideoConfigValidation(t *testing.T) {
	cfg := videoCfg()
	cfg.VideoEvery = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative VideoEvery accepted")
	}
	cfg = videoCfg()
	cfg.VideoFrames = 0
	n, err := cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.VideoFrames != 6 {
		t.Errorf("VideoFrames default %d, want 6", n.VideoFrames)
	}
}

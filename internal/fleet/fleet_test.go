package fleet

import (
	"errors"
	"testing"
	"time"

	"affectedge/internal/obs"
)

// smallCfg is a fast fleet for unit tests.
func smallCfg() Config {
	return Config{
		Sessions: 24,
		Shards:   4,
		Ticks:    30,
		Seed:     42,
	}
}

func TestConfigNormalize(t *testing.T) {
	cfg, err := Config{Sessions: 3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shards != 3 {
		t.Errorf("shards clamped to %d, want 3 (sessions)", cfg.Shards)
	}
	if cfg.TickEvery != time.Second || cfg.FeatureDim != 24 || cfg.QueueDepth != 1024 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.Hysteresis != 2 || cfg.MinConfidence != 0.3 {
		t.Errorf("manager defaults not applied: %+v", cfg)
	}
	for _, bad := range []Config{
		{Sessions: -1},
		{Sessions: 1, Ticks: -1},
		{Sessions: 1, FeatureDim: 1},
		{Sessions: 1, Noise: 3},
		{Sessions: 1, MinConfidence: 2},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestRunBasicInvariants(t *testing.T) {
	cfg := smallCfg()
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != cfg.Sessions || st.Shards != cfg.Shards || st.Ticks != cfg.Ticks {
		t.Fatalf("shape %+v does not match config %+v", st, cfg)
	}
	if want := int64(cfg.Sessions * cfg.Ticks); st.Observations != want {
		t.Errorf("observations %d, want exactly %d (one per session per tick)", st.Observations, want)
	}
	if st.Discarded > st.Observations {
		t.Errorf("discarded %d exceeds observed %d", st.Discarded, st.Observations)
	}
	if st.BatchRows != st.Observations {
		t.Errorf("batch rows %d != observations %d", st.BatchRows, st.Observations)
	}
	if want := int64(cfg.Shards * cfg.Ticks); st.Batches != want {
		t.Errorf("batches %d, want %d (one coalesced round per shard per tick)", st.Batches, want)
	}
	if st.MaxBatchRows != cfg.Sessions/cfg.Shards {
		t.Errorf("max batch rows %d, want %d", st.MaxBatchRows, cfg.Sessions/cfg.Shards)
	}
	if st.Launches == 0 {
		t.Error("no app launches in a 30-tick run with LaunchEvery default scaled to config")
	}
	if st.Drops != 0 || st.LateDrops != 0 {
		t.Errorf("deterministic run recorded drops: %d/%d", st.Drops, st.LateDrops)
	}
	if st.VirtualDuration != time.Duration(cfg.Ticks)*time.Second {
		t.Errorf("virtual duration %v", st.VirtualDuration)
	}
	if st.WallTime <= 0 {
		t.Errorf("wall time %v", st.WallTime)
	}
	if st.AttentionSwitches == 0 || st.ModeSwitches == 0 {
		t.Errorf("control loop inert: %d attention / %d mode switches", st.AttentionSwitches, st.ModeSwitches)
	}
}

func TestRunLaunchesExerciseDevices(t *testing.T) {
	cfg := smallCfg()
	cfg.Sessions, cfg.Shards, cfg.Ticks = 8, 2, 400
	cfg.LaunchEvery = 3
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Launches == 0 || st.ColdStarts == 0 {
		t.Fatalf("launch schedule inert: %+v", st)
	}
	if st.Kills == 0 {
		t.Errorf("400 ticks of dense launches never hit the process limit: %+v", st)
	}
	if st.PeakRAM == 0 {
		t.Error("peak RAM never sampled")
	}
}

func TestSessionLifecycle(t *testing.T) {
	f, err := New(Config{Sessions: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := f.Sessions(); got != 4 {
		t.Fatalf("%d sessions, want 4", got)
	}
	if err := f.AddSession(2); err == nil {
		t.Error("duplicate session id accepted")
	}
	if err := f.AddSession(-1); err == nil {
		t.Error("negative session id accepted")
	}
	if err := f.RemoveSession(99); err == nil {
		t.Error("removing unknown session succeeded")
	}
	if err := f.RemoveSession(2); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSession(100); err != nil {
		t.Fatal(err)
	}
	if got := f.Sessions(); got != 4 {
		t.Fatalf("%d sessions after remove+add, want 4", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSession(200); !errors.Is(err, ErrClosed) {
		t.Errorf("AddSession after Close: %v, want ErrClosed", err)
	}
	if err := f.Start(); !errors.Is(err, ErrClosed) {
		t.Errorf("Start after Close: %v, want ErrClosed", err)
	}
	if _, err := f.RunTicks(1); !errors.Is(err, ErrClosed) {
		t.Errorf("RunTicks after Close: %v, want ErrClosed", err)
	}
}

func TestLiveServing(t *testing.T) {
	cfg := Config{Sessions: 8, Shards: 2, QueueDepth: 64}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil { // idempotent
		t.Fatal(err)
	}
	norm, _ := cfg.Normalize()
	x := make([]float64, norm.FeatureDim)
	if err := f.Observe(0, time.Second, x[:3]); err == nil {
		t.Error("short feature vector accepted")
	}
	if err := f.Observe(99, time.Second, x); err == nil {
		t.Error("observation for unknown session accepted")
	}
	if _, err := f.Launch(99, time.Second, "chrome"); err == nil {
		t.Error("launch for unknown session accepted")
	}
	if _, err := f.Launch(0, time.Second, "chrome"); err != nil {
		t.Fatal(err)
	}
	const rounds = 50
	for i := 0; i < rounds; i++ {
		for id := 0; id < 8; id++ {
			for {
				err := f.Observe(id, time.Duration(i+1)*time.Second, x)
				if err == nil {
					break
				}
				if !errors.Is(err, ErrBackpressure) {
					t.Fatal(err)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Observe(0, time.Second, x); !errors.Is(err, ErrClosed) {
		t.Errorf("Observe after Close: %v, want ErrClosed", err)
	}
	st := f.Stats()
	// Close drains: every accepted observation must have been applied.
	if want := int64(8 * rounds); st.Observations != want {
		t.Errorf("observations %d, want %d (graceful drain)", st.Observations, want)
	}
	if st.Launches != 1 {
		t.Errorf("launches %d, want 1", st.Launches)
	}
	if st.Batches == 0 {
		t.Error("no inference batches recorded")
	}
}

func TestBackpressureDropsAndCounts(t *testing.T) {
	reg := obs.NewRegistry()
	WireMetrics(reg.Scope("fleet"))
	defer WireMetrics(nil)
	cfg := Config{Sessions: 2, Shards: 1, QueueDepth: 4}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No Start: the queue only fills. Depth 4 ⇒ fifth enqueue drops.
	norm, _ := cfg.Normalize()
	x := make([]float64, norm.FeatureDim)
	var drops int
	for i := 0; i < 10; i++ {
		if err := f.Observe(0, time.Second, x); errors.Is(err, ErrBackpressure) {
			drops++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if drops != 6 {
		t.Errorf("%d drops from 10 sends into a depth-4 queue, want 6", drops)
	}
	st := f.Stats()
	if st.Drops != 6 {
		t.Errorf("stats drops %d, want 6", st.Drops)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("fleet.drops"); got != 6 {
		t.Errorf("fleet.drops counter %d, want 6", got)
	}
	if got := snap.Counter("fleet.shard00.drops"); got != 6 {
		t.Errorf("fleet.shard00.drops counter %d, want 6", got)
	}
	if got := snap.Gauge("fleet.shard00.queue_depth_high"); got != 4 {
		t.Errorf("queue depth high-water %d, want 4", got)
	}
	if got := snap.Gauge("fleet.sessions"); got != 2 {
		t.Errorf("sessions gauge %d, want 2", got)
	}
	if got := snap.Counter("fleet.ingress"); got != 4 {
		t.Errorf("fleet.ingress counter %d, want 4", got)
	}
	// Draining via Start+Close applies the four queued observations.
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().Observations; got != 4 {
		t.Errorf("observations %d after drain, want 4", got)
	}
}

func TestLateDropSkipsRemovedSession(t *testing.T) {
	cfg := Config{Sessions: 2, Shards: 1, QueueDepth: 8}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	norm, _ := cfg.Normalize()
	x := make([]float64, norm.FeatureDim)
	for i := 0; i < 3; i++ {
		if err := f.Observe(1, time.Second, x); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.RemoveSession(1); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.LateDrops != 3 {
		t.Errorf("late drops %d, want 3", st.LateDrops)
	}
	if st.Observations != 0 {
		t.Errorf("observations %d, want 0 (session was gone)", st.Observations)
	}
}

func TestRunTicksRejectsLiveFleet(t *testing.T) {
	f, err := New(Config{Sessions: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunTicks(1); err == nil {
		t.Error("deterministic RunTicks accepted on a started fleet")
	}
	if _, err := f.RunTicks(-1); err == nil {
		t.Error("negative tick count accepted")
	}
}

func TestConfidenceMargin(t *testing.T) {
	for _, tc := range []struct {
		logits []float64
		want   float64
	}{
		{[]float64{1, 1}, 0},      // tie: fully ambiguous
		{[]float64{2, 1}, 0.5},    // margin 1
		{[]float64{5}, 1},         // degenerate single class
		{[]float64{3, 1, 2}, 0.5}, // margin is top-2, not top-vs-last
		{[]float64{0, -4}, 0.8},   // margin 4
	} {
		if got := confidence(tc.logits); got != tc.want {
			t.Errorf("confidence(%v) = %v, want %v", tc.logits, got, tc.want)
		}
	}
}

// Package fleet composes the repository's single-device closed loop into a
// production-shaped serving layer: a sharded, lock-striped session manager
// that runs thousands of simulated device sessions concurrently.
//
// Each session owns the full per-user control stack — a core.Manager with
// hysteresis, decoder-mode selection, and an android.Device driven by the
// Emotional Background Manager — while the expensive part of the loop,
// affect classification, is *shared*: all inference requests arriving at a
// shard are coalesced into one batched int8 nn.QMLP evaluation (qgemmNT),
// amortizing the quantized kernels across users exactly the way a serving
// host amortizes an accelerator.
//
// Two execution modes share the same session state:
//
//   - The deterministic simulation path (Run, sim.go): shards advance in
//     lock-step ticks under the internal/parallel pool. Sessions are
//     sub-seeded, shards only touch their own state, and aggregate stats
//     merge in shard order, so a run is bit-identical at any worker count
//     — the repository-wide determinism contract.
//
//   - The live serving path (Start/Observe/Close): each shard owns a
//     bounded ingress queue and a worker goroutine. Observe never blocks:
//     when a shard's queue is full the observation is dropped and counted
//     (backpressure surfaces as ErrBackpressure). Close stops intake,
//     drains every queue, and joins the workers.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"affectedge/internal/affect"
	"affectedge/internal/android"
	"affectedge/internal/core"
	"affectedge/internal/emotion"
	"affectedge/internal/h264"
	"affectedge/internal/nn"
	"affectedge/internal/obs"
	"affectedge/internal/stream"
)

// Sentinel errors of the serving API.
var (
	// ErrBackpressure reports a full shard ingress queue; the observation
	// was dropped and counted, and the caller may retry later.
	ErrBackpressure = errors.New("fleet: shard ingress queue full")
	// ErrClosed reports an operation on a closed fleet.
	ErrClosed = errors.New("fleet: closed")
	// ErrUnknownSession reports an operation on a session id the fleet
	// does not currently serve (never added, removed, or parked by
	// Disconnect). Wrapped with the id; match with errors.Is — the ingest
	// server maps it onto a protocol-level NACK.
	ErrUnknownSession = errors.New("fleet: unknown session")
)

// Config sizes the fleet. The zero value of every field except Sessions
// has a sensible default; see Normalize.
type Config struct {
	// Sessions is the number of device sessions created up front (ids
	// 0..Sessions-1). More can be added later with AddSession.
	Sessions int
	// Shards is the number of lock stripes / batching domains (default 8,
	// clamped to Sessions when larger).
	Shards int
	// Ticks is the deterministic run length in observation rounds.
	Ticks int
	// TickEvery is the virtual time between observation rounds (default 1s).
	TickEvery time.Duration
	// Seed drives every session's sub-seeded RNG and the stream model.
	Seed int64
	// FeatureDim is the classifier input dimensionality (default 24).
	FeatureDim int
	// Noise is the feature jitter of the synthetic observation streams
	// (default 0.15).
	Noise float64
	// SwitchEvery is the mean number of ticks between a session's latent
	// emotion changes (default 25).
	SwitchEvery int
	// LaunchEvery is the mean number of ticks between a session's app
	// launches (default 40).
	LaunchEvery int
	// QueueDepth bounds each shard's live ingress queue (default 1024).
	QueueDepth int
	// MaxBatch caps how many queued observations one live inference batch
	// coalesces (default 256).
	MaxBatch int
	// Hysteresis and MinConfidence configure every session's manager
	// (defaults from core.DefaultManagerConfig). Session managers always
	// run with DisableHistory: per-session transition slices would grow
	// without bound at fleet scale.
	Hysteresis    int
	MinConfidence float64
	// Device configures every session's simulated phone (zero value:
	// android.DefaultDeviceConfig).
	Device android.DeviceConfig
	// SerialInfer evaluates sessions one at a time instead of coalescing a
	// shard's requests into one batched GEMM. Integer arithmetic is exact,
	// so results are identical; only throughput changes. Used by the
	// batching benchmarks and equivalence tests.
	SerialInfer bool
	// VideoEvery, when positive, gives every session a video workload on
	// the deterministic path: each VideoEvery ticks the session decodes the
	// shared probe clip in its manager's current decoder operating mode
	// (Input Selector plus deblocking knob), on the shard's pooled decoder.
	// 0 disables the probe. The probe reads session state but never writes
	// it, so fingerprints are identical with the probe on or off.
	VideoEvery int
	// VideoFrames is the probe clip length in frames (default 6). The clip
	// is generated and encoded once at New, the per-mode Input Selector
	// passes are pre-applied, and every shard decodes the shared streams.
	VideoFrames int
	// ChunkBytes, when positive, switches the deterministic path to chunked
	// streaming ingest: session observations are synthesized as fragments
	// (ChunkBytes/8 float64 values each) routed through a bounded per-shard
	// stream.FIFO, and video probes feed their bitstreams to a progressive
	// h264.StreamDecoder in ChunkBytes slices instead of one DecodeStream
	// call. Both reuse the bit-exact streaming kernels, so every run
	// fingerprint is identical to the whole-buffer feed (golden tests pin
	// this); only peak ingest memory changes. 0 keeps whole-buffer ingest.
	ChunkBytes int
	// Traffic shapes every session's app-launch schedule on the
	// deterministic path (nil: UniformTraffic, the historical behavior —
	// runs under it are bit-identical to runs before traffic models
	// existed).
	Traffic TrafficModel
	// Profiles makes shards heterogeneous: shard i takes profile
	// i%len(Profiles). Empty keeps every shard on Config.Device and the
	// full app catalog.
	Profiles []ShardProfile
}

// ShardProfile customizes one shard's hardware class and app catalog,
// modelling a fleet whose users carry different phones with different app
// sets.
type ShardProfile struct {
	// Device is the hardware class for sessions on this shard; the zero
	// value inherits Config.Device.
	Device android.DeviceConfig
	// Apps restricts the shard's launch catalog to this subset of
	// android.CatalogNames(); empty inherits the full catalog. Normalize
	// sorts it and rejects unknown or duplicate names.
	Apps []string
}

// Normalize fills defaults and validates; returned config is self-contained.
func (c Config) Normalize() (Config, error) {
	if c.Sessions < 0 {
		return c, fmt.Errorf("fleet: %d sessions", c.Sessions)
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Sessions > 0 && c.Shards > c.Sessions {
		c.Shards = c.Sessions
	}
	if c.Ticks < 0 {
		return c, fmt.Errorf("fleet: %d ticks", c.Ticks)
	}
	if c.TickEvery <= 0 {
		c.TickEvery = time.Second
	}
	if c.FeatureDim == 0 {
		c.FeatureDim = 24
	}
	if c.FeatureDim < 2 {
		return c, fmt.Errorf("fleet: feature dim %d, want >= 2", c.FeatureDim)
	}
	if c.Noise == 0 {
		c.Noise = 0.15
	}
	if c.Noise < 0 || c.Noise > 2 {
		return c, fmt.Errorf("fleet: noise %g outside (0, 2]", c.Noise)
	}
	if c.SwitchEvery <= 0 {
		c.SwitchEvery = 25
	}
	if c.LaunchEvery <= 0 {
		c.LaunchEvery = 40
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = core.DefaultManagerConfig().Hysteresis
	}
	if c.MinConfidence == 0 {
		c.MinConfidence = core.DefaultManagerConfig().MinConfidence
	}
	if c.MinConfidence < 0 || c.MinConfidence > 1 {
		return c, fmt.Errorf("fleet: min confidence %g outside [0,1]", c.MinConfidence)
	}
	if c.Device.RAMBytes == 0 {
		c.Device = android.DefaultDeviceConfig()
	}
	if c.VideoEvery < 0 {
		return c, fmt.Errorf("fleet: video probe every %d ticks", c.VideoEvery)
	}
	if c.VideoFrames <= 0 {
		c.VideoFrames = 6
	}
	if c.ChunkBytes < 0 {
		return c, fmt.Errorf("fleet: chunk bytes %d", c.ChunkBytes)
	}
	if c.Traffic == nil {
		c.Traffic = UniformTraffic{}
	}
	if len(c.Profiles) > 0 {
		catalog := android.CatalogByName()
		profiles := append([]ShardProfile(nil), c.Profiles...)
		for pi := range profiles {
			p := &profiles[pi]
			if p.Device.RAMBytes == 0 {
				p.Device = c.Device
			}
			if len(p.Apps) == 0 {
				continue
			}
			apps := append([]string(nil), p.Apps...)
			sort.Strings(apps)
			for i, name := range apps {
				if _, ok := catalog[name]; !ok {
					return c, fmt.Errorf("fleet: profile %d app %q not in catalog", pi, name)
				}
				if i > 0 && apps[i-1] == name {
					return c, fmt.Errorf("fleet: profile %d duplicate app %q", pi, name)
				}
			}
			p.Apps = apps
		}
		c.Profiles = profiles
	}
	return c, nil
}

// session is one simulated device: its own control loop and phone, plus
// the latent emotional state driving its synthetic observation stream.
// Sessions are closed systems — all their randomness flows through the
// counted sub-seeded RNG and they never read each other's state — which is
// what makes a parked session's missed rounds exactly replayable.
type session struct {
	id  int
	rng *rand.Rand
	src *countingSource // rng's source; draw count is the RNG snapshot state
	mgr *core.Manager
	dev *android.Device

	latent     emotion.Label
	nextSwitch int
	nextLaunch int
	// ticks is the deterministic round this session has advanced to. Kept
	// current only at lifecycle edges (creation, disconnect, catch-up) —
	// live in-order sessions are implicitly at the fleet's tick.
	ticks int
}

// request is one live-path submission travelling through a shard queue:
// either a single observation (Observe; ids nil) or a grouped run from
// ObserveBatch, which occupies one queue slot but carries len(ids)
// observations with their timestamps and a flat len(ids)×dim feature
// backing.
type request struct {
	id int
	at time.Duration
	x  []float64

	ids []int
	ats []time.Duration
	xs  []float64
}

// rows is how many observations r carries.
func (r *request) rows() int {
	if r.ids != nil {
		return len(r.ids)
	}
	return 1
}

// shard is one lock stripe: a slice of the session population plus the
// scratch to classify all of it in one batched int8 evaluation.
type shard struct {
	f *Fleet

	idx      int // shard index (stripe number)
	mu       sync.Mutex
	sessions map[int]*session
	order    []int // sorted ids: deterministic iteration
	// parked holds disconnected sessions: frozen at session.ticks, out of
	// the batching order, caught up on Reconnect.
	parked map[int]*session

	// apps is the shard's launch catalog and devcfg its hardware class
	// (heterogeneous fleets via Config.Profiles; defaults to the full
	// catalog and Config.Device). Read-only after New.
	apps   []string
	devcfg android.DeviceConfig

	queue chan request

	// Inference scratch, owned by whichever goroutine holds the shard
	// (the tick driver or the shard worker — never both).
	feat   []float64
	logits []float64
	qs     nn.QScratch
	batch  []*session
	ats    []time.Duration // live path: per-batch-row timestamps
	reqs   []request

	// Video probe scratch (deterministic path; owned by the goroutine
	// holding the shard). One pooled decoder per shard decodes every
	// session's probe, so steady state runs with zero plane allocations.
	vdec    *h264.Decoder
	vpool   *h264.FramePool
	vframes []*h264.Frame
	sdec    *h264.StreamDecoder // progressive probe front end (ChunkBytes > 0)

	// Chunked-ingest scratch (deterministic path, ChunkBytes > 0): each
	// session's observation is synthesized as fragments and routed through
	// this bounded FIFO before landing in the batch matrix.
	obsFIFO *stream.FIFO[float64]
	rowBuf  []float64

	// Deterministic-path aggregation.
	batches        int64
	batchRows      int64
	maxRows        int
	videoDecodes   int64
	videoFrames    int64
	videoConcealed int64

	depth *obs.Gauge   // ingress high-water mark
	drops *obs.Counter // per-shard drop counter
}

// Fleet is the sharded session manager.
type Fleet struct {
	cfg    Config
	stream *affect.StreamModel
	model  *nn.QMLP
	apps   []string
	policy android.KillPolicy // read-only, shared by every device
	shards []*shard

	base int // deterministic ticks already run (RunTicks continuation)

	// Video probe: the calibration clip encoded once at New, with the
	// Input Selector pre-applied per decoder mode, so per-session probes
	// are pure decode work. Empty unless cfg.VideoEvery > 0.
	videoStreams [h264.NumModes][]byte
	videoTotal   int // display-timeline frame count of the probe clip

	started atomic.Bool
	closed  atomic.Bool
	// lifeMu fences intake against Close: Observe enqueues under RLock,
	// Close takes the write lock after flipping closed so every accepted
	// observation is in a queue before the drain begins. Without it an
	// enqueue could land after the workers exit and silently strand.
	lifeMu sync.RWMutex
	stop   chan struct{}
	wg     sync.WaitGroup

	drops atomic.Int64 // live-path drops (backpressure)
	late  atomic.Int64 // live-path requests for sessions removed in flight
}

// New builds the fleet: the shared stream model and its matched int8
// classifier, the shards, and cfg.Sessions initial sessions. No goroutines
// are started; use Run for the deterministic simulation or Start/Observe/
// Close for live serving. Wire metrics (WireMetrics) before calling New so
// per-shard gauges attach.
func New(cfg Config) (*Fleet, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	stream, err := affect.NewStreamModel(cfg.FeatureDim, cfg.Seed)
	if err != nil {
		return nil, err
	}
	model, err := stream.QuantizedClassifier(cfg.Noise)
	if err != nil {
		return nil, err
	}
	table, err := android.AffectTableFromSubjects()
	if err != nil {
		return nil, err
	}
	policy, err := android.NewEmotionalPolicy(table)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:    cfg,
		stream: stream,
		model:  model,
		apps:   android.CatalogNames(),
		policy: policy,
		shards: make([]*shard, cfg.Shards),
		stop:   make(chan struct{}),
	}
	for i := range f.shards {
		sh := &shard{
			f:        f,
			idx:      i,
			sessions: map[int]*session{},
			parked:   map[int]*session{},
			apps:     f.apps,
			devcfg:   cfg.Device,
			queue:    make(chan request, cfg.QueueDepth),
			depth:    mtr.shard(i).Gauge("queue_depth_high"),
			drops:    mtr.shard(i).Counter("drops"),
		}
		if len(cfg.Profiles) > 0 {
			p := cfg.Profiles[i%len(cfg.Profiles)]
			sh.devcfg = p.Device
			if len(p.Apps) > 0 {
				sh.apps = p.Apps
			}
		}
		f.shards[i] = sh
	}
	if cfg.VideoEvery > 0 {
		if err := f.buildVideoProbe(); err != nil {
			return nil, err
		}
	}
	for id := 0; id < cfg.Sessions; id++ {
		if err := f.AddSession(id); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// shardOf stripes a session id onto its shard.
func (f *Fleet) shardOf(id int) *shard { return f.shards[id%len(f.shards)] }

// sessionSeed derives session id's RNG seed from the fleet seed alone —
// never from creation order or worker scheduling — which is what makes
// N-worker runs bit-identical and lets snapshot restore rebuild the source
// without serializing generator internals.
func sessionSeed(fleetSeed int64, id int) int64 {
	const golden = int64(-7046029254386353131) // 0x9E3779B97F4A7C15: splitmix64 increment
	return fleetSeed ^ (golden * int64(id+1))
}

// newSession builds a sub-seeded session. The RNG seed depends only on
// the fleet seed and the session id — never on creation order or worker
// scheduling — which is what makes N-worker runs bit-identical.
func (f *Fleet) newSession(id int) (*session, error) {
	mc := core.DefaultManagerConfig()
	mc.Hysteresis = f.cfg.Hysteresis
	mc.MinConfidence = f.cfg.MinConfidence
	mc.DisableHistory = true
	mgr, err := core.NewManager(mc)
	if err != nil {
		return nil, err
	}
	dev, err := android.NewDevice(f.shardOf(id).devcfg, f.policy)
	if err != nil {
		return nil, err
	}
	src := newCountingSource(sessionSeed(f.cfg.Seed, id))
	rng := rand.New(src)
	s := &session{
		id:     id,
		rng:    rng,
		src:    src,
		mgr:    mgr,
		dev:    dev,
		latent: emotion.Label(rng.Intn(emotion.NumLabels)),
	}
	s.nextSwitch = 1 + rng.Intn(2*f.cfg.SwitchEvery)
	s.nextLaunch = rng.Intn(2 * f.cfg.LaunchEvery)
	return s, nil
}

// AddSession creates session id. Safe for concurrent use with the live
// path; fails on duplicate ids or a closed fleet.
func (f *Fleet) AddSession(id int) error {
	if id < 0 {
		return fmt.Errorf("fleet: session id %d", id)
	}
	if f.closed.Load() {
		return ErrClosed
	}
	s, err := f.newSession(id)
	if err != nil {
		return err
	}
	sh := f.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.sessions[id]; dup {
		return fmt.Errorf("fleet: duplicate session %d", id)
	}
	if _, dup := sh.parked[id]; dup {
		return fmt.Errorf("fleet: duplicate session %d (disconnected)", id)
	}
	s.ticks = f.base
	sh.insert(s)
	mtr.added.Inc()
	mtr.sessions.Add(1)
	return nil
}

// insert places a session into the live set and sorted order. Caller holds
// sh.mu; id must not already be present.
func (sh *shard) insert(s *session) {
	sh.sessions[s.id] = s
	i := sort.SearchInts(sh.order, s.id)
	sh.order = append(sh.order, 0)
	copy(sh.order[i+1:], sh.order[i:])
	sh.order[i] = s.id
}

// RemoveSession tears down session id, connected or disconnected.
// Observations already queued for it are skipped (and counted) when their
// batch drains.
func (f *Fleet) RemoveSession(id int) error {
	sh := f.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.sessions[id]; ok {
		delete(sh.sessions, id)
		i := sort.SearchInts(sh.order, id)
		sh.order = append(sh.order[:i], sh.order[i+1:]...)
	} else if _, ok := sh.parked[id]; ok {
		delete(sh.parked, id)
	} else {
		return fmt.Errorf("%w %d", ErrUnknownSession, id)
	}
	mtr.removed.Inc()
	mtr.sessions.Add(-1)
	return nil
}

// FeatureDim returns the normalized classifier input dimensionality —
// what every Observe feature vector must measure.
func (f *Fleet) FeatureDim() int { return f.cfg.FeatureDim }

// Sessions returns the current session count, including disconnected
// sessions awaiting reconnect.
func (f *Fleet) Sessions() int {
	n := 0
	for _, sh := range f.shards {
		sh.mu.Lock()
		n += len(sh.sessions) + len(sh.parked)
		sh.mu.Unlock()
	}
	return n
}

// Start launches one worker goroutine per shard for the live serving path.
// Idempotent; returns ErrClosed after Close.
func (f *Fleet) Start() error {
	if f.closed.Load() {
		return ErrClosed
	}
	if !f.started.CompareAndSwap(false, true) {
		return nil
	}
	for _, sh := range f.shards {
		f.wg.Add(1)
		go sh.serve()
	}
	return nil
}

// Observe submits one live observation (a FeatureDim-long feature vector)
// for session id at virtual time at. It never blocks: a full shard queue
// drops the observation, counts it, and returns ErrBackpressure. The
// feature slice is copied; the caller may reuse x immediately.
func (f *Fleet) Observe(id int, at time.Duration, x []float64) error {
	if len(x) != f.cfg.FeatureDim {
		return fmt.Errorf("fleet: observation dim %d, want %d", len(x), f.cfg.FeatureDim)
	}
	return f.enqueue(id, at, append([]float64(nil), x...))
}

// ObserveChunks is Observe for feature vectors that arrive in fragments —
// the shape a streaming featurizer emits. The fragments are concatenated
// in order and must total FeatureDim values; each slice is copied, so
// callers may reuse their chunk buffers immediately. Equivalent in every
// observable way to Observe of the assembled vector.
func (f *Fleet) ObserveChunks(id int, at time.Duration, chunks ...[]float64) error {
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total != f.cfg.FeatureDim {
		return fmt.Errorf("fleet: chunked observation dim %d, want %d", total, f.cfg.FeatureDim)
	}
	x := make([]float64, 0, total)
	for _, c := range chunks {
		x = append(x, c...)
	}
	return f.enqueue(id, at, x)
}

// enqueue routes one assembled observation (ownership of x transfers to
// the fleet) onto its shard's ingress queue, never blocking.
func (f *Fleet) enqueue(id int, at time.Duration, x []float64) error {
	f.lifeMu.RLock()
	defer f.lifeMu.RUnlock()
	if f.closed.Load() {
		return ErrClosed
	}
	sh := f.shardOf(id)
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w %d", ErrUnknownSession, id)
	}
	r := request{id: id, at: at, x: x}
	select {
	case sh.queue <- r:
		sh.depth.SetMax(int64(len(sh.queue)))
		mtr.ingress.Inc()
		return nil
	default:
		f.drops.Add(1)
		sh.drops.Inc()
		mtr.drops.Inc()
		return ErrBackpressure
	}
}

// Obs is one observation of a batched live submission (ObserveBatch).
type Obs struct {
	ID int
	At time.Duration
	X  []float64
}

// ObserveBatch submits many live observations in one shard-level pass: the
// batch is cut into contiguous same-shard runs, and each run is admitted
// with one session check under the shard lock and one grouped enqueue (one
// queue slot regardless of run length) instead of a per-observation
// Observe round. Verdicts come back per item in statuses, which must be
// len(items) long: nil for accepted, ErrBackpressure for a full queue
// (retryable — the protocol's per-item NACK bit), a wrapped
// ErrUnknownSession or a dimension error otherwise, so one full shard or
// one bad item never fails the rest of the batch. Feature slices are
// copied; the caller may reuse them immediately. The call itself only
// fails on a statuses length mismatch or on ErrClosed (then every status
// is ErrClosed too). Per-session observation order is preserved: items of
// one session land in their batch order.
func (f *Fleet) ObserveBatch(items []Obs, statuses []error) error {
	if len(statuses) != len(items) {
		return fmt.Errorf("fleet: %d statuses for %d batch items", len(statuses), len(items))
	}
	f.lifeMu.RLock()
	defer f.lifeMu.RUnlock()
	if f.closed.Load() {
		for i := range statuses {
			statuses[i] = ErrClosed
		}
		return ErrClosed
	}
	for lo := 0; lo < len(items); {
		sh := f.shardOf(items[lo].ID)
		hi := lo + 1
		for hi < len(items) && f.shardOf(items[hi].ID) == sh {
			hi++
		}
		f.submitRun(sh, items[lo:hi], statuses[lo:hi])
		lo = hi
	}
	return nil
}

// submitRun admits one same-shard run of a batch. The grouped request
// occupies one queue slot, so admission caps the run's row count by the
// queue's free slot count — the same race-approximate full check as
// Observe's select/default, lifted from slots to rows — and every item
// past the cap is NACKed with ErrBackpressure instead of failing the run.
func (f *Fleet) submitRun(sh *shard, items []Obs, statuses []error) {
	dim := f.cfg.FeatureDim
	valid := 0
	sh.mu.Lock()
	for i := range items {
		if len(items[i].X) != dim {
			statuses[i] = fmt.Errorf("fleet: observation dim %d, want %d", len(items[i].X), dim)
			continue
		}
		if _, ok := sh.sessions[items[i].ID]; !ok {
			statuses[i] = fmt.Errorf("%w %d", ErrUnknownSession, items[i].ID)
			continue
		}
		statuses[i] = nil
		valid++
	}
	sh.mu.Unlock()
	if valid > 0 {
		admit := valid
		if free := cap(sh.queue) - len(sh.queue); admit > free {
			admit = free
		}
		if admit > 0 {
			r := request{
				ids: make([]int, 0, admit),
				ats: make([]time.Duration, 0, admit),
				xs:  make([]float64, 0, admit*dim),
			}
			for i := range items {
				if statuses[i] != nil {
					continue
				}
				if len(r.ids) == admit {
					statuses[i] = ErrBackpressure
					continue
				}
				r.ids = append(r.ids, items[i].ID)
				r.ats = append(r.ats, items[i].At)
				r.xs = append(r.xs, items[i].X...)
			}
			select {
			case sh.queue <- r:
				sh.depth.SetMax(int64(len(sh.queue)))
				mtr.ingress.Add(int64(admit))
			default:
				// Lost the race for the last free slot: the whole run
				// backs off retryably.
				for i := range items {
					if statuses[i] == nil {
						statuses[i] = ErrBackpressure
					}
				}
			}
		} else {
			for i := range items {
				if statuses[i] == nil {
					statuses[i] = ErrBackpressure
				}
			}
		}
	}
	nacked := int64(0)
	for i := range items {
		if errors.Is(statuses[i], ErrBackpressure) {
			nacked++
		}
	}
	if nacked > 0 {
		f.drops.Add(nacked)
		sh.drops.Add(nacked)
		mtr.drops.Add(nacked)
	}
}

// Launch foregrounds an app on session id's device at virtual time at,
// returning the simulated launch latency.
func (f *Fleet) Launch(id int, at time.Duration, app string) (time.Duration, error) {
	if f.closed.Load() {
		return 0, ErrClosed
	}
	sh := f.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sessions[id]
	if !ok {
		return 0, fmt.Errorf("%w %d", ErrUnknownSession, id)
	}
	return s.dev.Launch(at, app)
}

// Close stops intake, drains every shard queue, and joins the workers.
// Graceful and idempotent: observations accepted before Close are still
// classified and applied.
func (f *Fleet) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Wait out in-flight Observes: once the write lock is acquired, every
	// accepted observation sits in a shard queue and the drain will see it.
	f.lifeMu.Lock()
	f.lifeMu.Unlock() //nolint:staticcheck // empty critical section is the fence
	close(f.stop)
	f.wg.Wait()
	return nil
}

// serve is the live shard worker: block for one request, then coalesce
// everything else already queued (up to MaxBatch) into a single batched
// int8 evaluation.
func (sh *shard) serve() {
	defer sh.f.wg.Done()
	for {
		select {
		case r := <-sh.queue:
			sh.coalesce(r)
		case <-sh.f.stop:
			for { // drain: accepted observations are never discarded
				select {
				case r := <-sh.queue:
					sh.coalesce(r)
				default:
					return
				}
			}
		}
	}
}

// coalesce gathers queued requests behind first and processes them in
// MaxBatch-row inference rounds. The gather loop counts rows, not
// requests: a grouped request (ObserveBatch) can carry more rows than
// MaxBatch by itself, so the classify loop below cuts the gathered rows
// into MaxBatch-sized rounds — the shard's inference envelope, and the
// fingerprint's Batches/BatchRows/MaxBatchRows accounting, are then
// identical to the same traffic arriving one request at a time.
func (sh *shard) coalesce(first request) {
	reqs := append(sh.reqs[:0], first)
	rows := first.rows()
	for rows < sh.f.cfg.MaxBatch {
		select {
		case r := <-sh.queue:
			reqs = append(reqs, r)
			rows += r.rows()
		default:
			goto full
		}
	}
full:
	sh.reqs = reqs[:0] // retain capacity for the next batch
	sh.mu.Lock()
	defer sh.mu.Unlock()
	dim := sh.f.cfg.FeatureDim
	sh.batch = sh.batch[:0]
	sh.ats = sh.ats[:0]
	sh.feat = growFloats(sh.feat, rows*dim)
	m := 0
	for _, r := range reqs {
		if r.ids == nil {
			m = sh.gatherRow(m, r.id, r.at, r.x)
			continue
		}
		for k, id := range r.ids {
			m = sh.gatherRow(m, id, r.ats[k], r.xs[k*dim:(k+1)*dim])
		}
	}
	classes := len(sh.f.stream.Protos)
	maxB := sh.f.cfg.MaxBatch
	for lo := 0; lo < m; lo += maxB {
		n := m - lo
		if n > maxB {
			n = maxB
		}
		if err := sh.infer(lo, n); err != nil {
			// The model and dimensions are fixed at New; an inference error
			// here is a programming error, not load-dependent.
			panic(fmt.Sprintf("fleet: live inference: %v", err))
		}
		sh.countBatch(n, n)
		for k := 0; k < n; k++ {
			if err := sh.applyRow(sh.batch[lo+k], sh.ats[lo+k], sh.logits[k*classes:(k+1)*classes]); err != nil {
				panic(fmt.Sprintf("fleet: apply: %v", err))
			}
		}
	}
}

// gatherRow copies one queued observation into row m of the shard's batch
// matrix, skipping (and counting) observations whose session was removed
// while they waited. Caller holds sh.mu. Returns the next free row.
func (sh *shard) gatherRow(m, id int, at time.Duration, x []float64) int {
	s, ok := sh.sessions[id]
	if !ok {
		// Removed while queued: the request outlived its session.
		sh.f.late.Add(1)
		mtr.lateDrops.Inc()
		return m
	}
	dim := sh.f.cfg.FeatureDim
	copy(sh.feat[m*dim:(m+1)*dim], x)
	sh.batch = append(sh.batch, s)
	sh.ats = append(sh.ats, at)
	return m + 1
}

// infer classifies n feature rows of sh.feat starting at row off into
// sh.logits — one coalesced batched evaluation, or n single-row
// evaluations when SerialInfer is set (bit-identical results; integer
// arithmetic is exact).
func (sh *shard) infer(off, n int) error {
	dim := sh.f.cfg.FeatureDim
	classes := len(sh.f.stream.Protos)
	sh.logits = growFloats(sh.logits, n*classes)
	feat := sh.feat[off*dim : (off+n)*dim]
	if sh.f.cfg.SerialInfer {
		for k := 0; k < n; k++ {
			if err := sh.f.model.InferBatch(&sh.qs, feat[k*dim:(k+1)*dim], 1, sh.logits[k*classes:(k+1)*classes]); err != nil {
				return err
			}
		}
		return nil
	}
	return sh.f.model.InferBatch(&sh.qs, feat, n, sh.logits[:n*classes])
}

// countBatch records one inference round of rows classified rows against a
// logical population of pop sessions. On the live path pop == rows; on the
// deterministic path pop additionally counts parked sessions, so the
// frozen fingerprint fields (Batches, MaxBatchRows) are invariant under
// churn — a parked session's rows land later via catch-up replay, which
// backfills BatchRows one row at a time.
func (sh *shard) countBatch(rows, pop int) {
	sh.batches++
	sh.batchRows += int64(rows)
	if pop > sh.maxRows {
		sh.maxRows = pop
	}
	mtr.batches.Inc()
	mtr.batchRows.Observe(int64(rows))
}

// applyRow feeds one classified observation into the session's control
// loop: hysteresis, decoder mode, and the device's mood for the EBM.
func (sh *shard) applyRow(s *session, at time.Duration, logits []float64) error {
	label := emotion.Label(nn.Argmax(logits))
	switched, err := s.mgr.Observe(core.Observation{
		At:         at,
		Label:      label,
		Confidence: confidence(logits),
	})
	if err != nil {
		return err
	}
	if switched {
		if err := s.dev.SetMood(s.mgr.Mood()); err != nil {
			return err
		}
	}
	return nil
}

// confidence maps classifier logits to [0,1) via the top-2 margin:
// ambiguous observations (small margin) land below MinConfidence and are
// absorbed by the manager's discard path, mirroring how a deployed
// classifier's softmax confidence gates the control loop.
func confidence(logits []float64) float64 {
	if len(logits) < 2 {
		return 1
	}
	top, second := math.Inf(-1), math.Inf(-1)
	for _, v := range logits {
		if v > top {
			top, second = v, top
		} else if v > second {
			second = v
		}
	}
	m := top - second
	return m / (1 + m)
}

// growFloats is append-free scratch sizing (contents unspecified).
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

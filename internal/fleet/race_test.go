package fleet

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestStressConcurrentServing hammers the live path from many goroutines —
// observations, app launches, session churn, and stats snapshots all while
// the shard workers drain — then closes the fleet mid-traffic. Run under
// `make test-race` this is the shard-map/coalescer race check; without
// -race it still verifies the accounting invariant that every accepted
// observation is either applied or counted as a late drop.
func TestStressConcurrentServing(t *testing.T) {
	cfg := Config{Sessions: 32, Shards: 4, QueueDepth: 128, MaxBatch: 16}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	norm, _ := cfg.Normalize()

	var accepted sync.WaitGroup // not a counter: just the goroutine join
	var mu sync.Mutex
	var sent int64

	const (
		observers = 8
		perObs    = 400
		churners  = 2
	)
	stopChurn := make(chan struct{})

	for g := 0; g < observers; g++ {
		accepted.Add(1)
		go func(g int) {
			defer accepted.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			x := make([]float64, norm.FeatureDim)
			var mine int64
			for i := 0; i < perObs; i++ {
				id := rng.Intn(cfg.Sessions)
				for j := range x {
					x[j] = rng.NormFloat64()
				}
				err := f.Observe(id, time.Duration(i+1)*time.Millisecond, x)
				switch {
				case err == nil:
					mine++
				case errors.Is(err, ErrBackpressure):
					time.Sleep(50 * time.Microsecond)
				case errors.Is(err, ErrClosed):
					return
				default:
					// Unknown-session errors are expected during churn.
				}
				if i%64 == 0 {
					_ = f.Stats()
					if id%2 == 0 {
						_, _ = f.Launch(id, time.Duration(i+1)*time.Millisecond, "chrome")
					}
				}
			}
			mu.Lock()
			sent += mine
			mu.Unlock()
		}(g)
	}

	// Churners add and remove a disjoint id range so observers' ids stay
	// mostly valid while the shard maps mutate constantly.
	var churn sync.WaitGroup
	for g := 0; g < churners; g++ {
		churn.Add(1)
		go func(g int) {
			defer churn.Done()
			base := 1000 + g*1000
			for i := 0; ; i++ {
				select {
				case <-stopChurn:
					return
				default:
				}
				id := base + i%50
				if err := f.AddSession(id); err != nil && !errors.Is(err, ErrClosed) {
					_ = f.RemoveSession(id)
				}
			}
		}(g)
	}

	accepted.Wait()
	close(stopChurn)
	churn.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotent close, including concurrently-observable state.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st := f.Stats()
	if st.Observations+st.LateDrops != sent {
		t.Fatalf("accepted %d but applied %d + late-dropped %d", sent, st.Observations, st.LateDrops)
	}
	if st.Batches == 0 || st.BatchRows != st.Observations {
		t.Fatalf("batch accounting off: %+v vs %d applied", st, st.Observations)
	}
	if st.MaxBatchRows > 16 {
		t.Fatalf("coalesced %d rows, MaxBatch is 16", st.MaxBatchRows)
	}
}

// TestStressCloseDuringTraffic closes the fleet while observers are still
// sending: Close must drain without losing accepted observations and
// subsequent sends must fail cleanly with ErrClosed.
func TestStressCloseDuringTraffic(t *testing.T) {
	cfg := Config{Sessions: 16, Shards: 4, QueueDepth: 256}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	norm, _ := cfg.Normalize()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var sent int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			x := make([]float64, norm.FeatureDim)
			var mine int64
			for i := 0; ; i++ {
				err := f.Observe(i%cfg.Sessions, time.Duration(i+1)*time.Microsecond, x)
				if errors.Is(err, ErrClosed) {
					break
				}
				if err == nil {
					mine++
				}
			}
			mu.Lock()
			sent += mine
			mu.Unlock()
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if st := f.Stats(); st.Observations != sent {
		t.Fatalf("accepted %d, applied %d — Close lost queued work", sent, st.Observations)
	}
}

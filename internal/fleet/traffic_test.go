package fleet

import (
	"math/rand"
	"testing"
	"time"

	"affectedge/internal/android"
	"affectedge/internal/emotion"
	"affectedge/internal/monkey"
)

// allTraffic returns every named model once.
func allTraffic(t *testing.T) []TrafficModel {
	t.Helper()
	var models []TrafficModel
	for _, name := range []string{"uniform", "bursty", "diurnal", "adversarial"} {
		m, err := TrafficByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("TrafficByName(%q).Name() = %q", name, m.Name())
		}
		models = append(models, m)
	}
	return models
}

func TestTrafficByName(t *testing.T) {
	allTraffic(t)
	if m, err := TrafficByName(""); err != nil || m.Name() != "uniform" {
		t.Fatalf("empty name: %v, %v", m, err)
	}
	if _, err := TrafficByName("rushhour"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// TestTrafficModelContract pins the interface guarantees every model must
// hold for the simulation to stay deterministic and always advance: gaps
// >= 1, apps from the given catalog, and pure functions of (rng, args).
func TestTrafficModelContract(t *testing.T) {
	apps := android.CatalogNames()
	for _, m := range allTraffic(t) {
		rng := rand.New(rand.NewSource(9))
		replay := rand.New(rand.NewSource(9))
		inCatalog := map[string]bool{}
		for _, a := range apps {
			inCatalog[a] = true
		}
		for tick := 0; tick < 500; tick++ {
			gap := m.NextGap(rng, 5, tick)
			if gap < 1 {
				t.Fatalf("%s: NextGap = %d at tick %d, want >= 1", m.Name(), gap, tick)
			}
			if g2 := m.NextGap(replay, 5, tick); g2 != gap {
				t.Fatalf("%s: NextGap not deterministic at tick %d: %d vs %d", m.Name(), tick, gap, g2)
			}
			app := m.PickApp(rng, apps, tick)
			if !inCatalog[app] {
				t.Fatalf("%s: PickApp returned %q, not in catalog", m.Name(), app)
			}
			if a2 := m.PickApp(replay, apps, tick); a2 != app {
				t.Fatalf("%s: PickApp not deterministic at tick %d: %q vs %q", m.Name(), tick, app, a2)
			}
		}
	}
}

// TestHeaviestQuarter: the adversarial model's target set is the top
// quarter of the catalog by resident footprint, minimum one app, and never
// an app outside the given subset.
func TestHeaviestQuarter(t *testing.T) {
	apps := android.CatalogNames()
	byName := android.CatalogByName()
	heavy := heaviestQuarter(apps)
	if want := len(apps) / 4; len(heavy) != want {
		t.Fatalf("heaviestQuarter size %d, want %d", len(heavy), want)
	}
	floor := byName[heavy[len(heavy)-1]].MemBytes
	for _, name := range apps {
		picked := false
		for _, h := range heavy {
			if h == name {
				picked = true
			}
		}
		if !picked && byName[name].MemBytes > floor {
			t.Fatalf("%s (%d bytes) outranks picked floor %d but was skipped", name, byName[name].MemBytes, floor)
		}
	}
	if got := heaviestQuarter(apps[:2]); len(got) != 1 {
		t.Fatalf("two-app subset: %v, want exactly one", got)
	}
	if got := heaviestQuarter(apps[:1]); len(got) != 1 || got[0] != apps[0] {
		t.Fatalf("single-app subset: %v", got)
	}
}

// TestDiurnalMood: the phase timeline wraps day boundaries, sticks to the
// final phase mood inside the day, and an empty phase list falls back to
// the monkey defaults rather than dividing by a zero-length day.
func TestDiurnalMood(t *testing.T) {
	d := DiurnalTraffic{
		Phases: []monkey.Phase{
			{Mood: emotion.Excited, Duration: 10 * time.Second},
			{Mood: emotion.CalmMood, Duration: 5 * time.Second},
		},
	}
	cases := map[int]bool{ // tick -> excited?
		0:  true,
		9:  true,
		10: false,
		14: false,
		15: true,  // wrapped into day two
		29: false, // wrapped, calm tail
	}
	for tick, excited := range cases {
		if got := d.mood(tick) == emotion.Excited; got != excited {
			t.Errorf("tick %d: excited = %v, want %v", tick, got, excited)
		}
	}
	var def DiurnalTraffic
	rng := rand.New(rand.NewSource(1))
	for tick := 0; tick < 2000; tick += 97 {
		if gap := def.NextGap(rng, 5, tick); gap < 1 || gap > 20 {
			t.Fatalf("default diurnal gap %d at tick %d", gap, tick)
		}
	}
}

// TestTrafficChurnInvariance: the lifecycle contract holds under every
// model, not just uniform — catch-up replays the same NextGap/PickApp
// draws the live path would have made.
func TestTrafficChurnInvariance(t *testing.T) {
	for _, m := range allTraffic(t) {
		cfg := detCfg()
		cfg.Traffic = m
		oracle, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.RunTicks(12); err != nil {
			t.Fatal(err)
		}
		for id := 1; id < cfg.Sessions; id += 4 {
			if err := f.Disconnect(id); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := f.RunTicks(cfg.Ticks - 12); err != nil {
			t.Fatal(err)
		}
		for id := 1; id < cfg.Sessions; id += 4 {
			if err := f.Reconnect(id); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := f.Stats().Fingerprint(), oracle.Fingerprint(); got != want {
			t.Fatalf("%s: churn fingerprint %s, oracle %s", m.Name(), got, want)
		}
	}
}

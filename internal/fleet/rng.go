package fleet

import "math/rand"

// countingSource wraps a math/rand source and counts how many values have
// been drawn. That count IS the serializable RNG state: math/rand's
// lagged-Fibonacci generator advances exactly one internal step per Int63
// or Uint64 call, so a source rebuilt from the same seed and fast-forwarded
// the same number of steps produces the identical remaining stream. Session
// snapshots therefore carry a (seed-derivable, draw-count) pair instead of
// the generator's private state, which math/rand does not expose.
//
// The wrapper implements rand.Source64, the same interface the raw
// rand.NewSource value satisfies, so rand.Rand takes the identical code
// paths with or without it — the generated stream (and every pinned golden
// fingerprint) is unchanged.
type countingSource struct {
	src rand.Source64
	n   uint64 // values drawn since seeding
}

// newCountingSource seeds a fresh counted source.
func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count.
func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// draws returns the number of values drawn since seeding.
func (c *countingSource) draws() uint64 { return c.n }

// skip fast-forwards the source by n draws (restore path).
func (c *countingSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.n = n
}

// Package personality models the four study subjects of §5.1 (Fig 7
// left): Big-Five personality profiles and their top-20 app-category
// usage distributions, reproduced from the paper's description of the
// 640-subject smartphone-usage study it samples from. The paper uses
// personality as a proxy for long-term affect; subjects 3 and 4 stand in
// for the excited and calm moods of the Fig 9 experiment.
package personality

import (
	"fmt"
	"sort"

	"affectedge/internal/emotion"
)

// BigFive is an OCEAN personality score vector, each trait in [0, 1].
type BigFive struct {
	Openness          float64
	Conscientiousness float64
	Extraversion      float64
	Agreeableness     float64
	EmotionalStab     float64
}

// Category is an app-usage category from the study's top-20 taxonomy.
type Category string

// The top-20 categories of Fig 7.
const (
	Messaging      Category = "messaging"
	SocialNetworks Category = "social_networks"
	Foto           Category = "foto"
	Settings       Category = "settings"
	MusicRadio     Category = "music_audio_radio"
	TimerClocks    Category = "timer_clocks"
	Calling        Category = "calling"
	Calculator     Category = "calculator"
	Browser        Category = "internet_browser"
	EMail          Category = "e_mail"
	Shopping       Category = "shopping"
	SharingCloud   Category = "sharing_cloud"
	Camera         Category = "camera"
	Video          Category = "video"
	TV             Category = "tv"
	VideoApps      Category = "video_apps"
	Gallery        Category = "gallery"
	SystemApp      Category = "system_app"
	CalendarApps   Category = "calendar_apps"
	Transportation Category = "shared_transportation"
)

// Categories returns all 20 categories in a stable order.
func Categories() []Category {
	return []Category{
		Messaging, SocialNetworks, Foto, Settings, MusicRadio,
		TimerClocks, Calling, Calculator, Browser, EMail,
		Shopping, SharingCloud, Camera, Video, TV,
		VideoApps, Gallery, SystemApp, CalendarApps, Transportation,
	}
}

// Subject is one studied user: a personality profile and a daily usage
// mix over the top-20 categories (fractions summing to 1).
type Subject struct {
	ID          int
	Description string
	Profile     BigFive
	Usage       map[Category]float64
	// Mood is the coarse affect this subject emulates in the Fig 9
	// experiment (the paper maps subject 3 -> excited, subject 4 -> calm).
	Mood emotion.Mood
}

// Subjects returns the four studied subjects. Messaging plus internet
// browsing dominate every subject at 60-70% combined, per Fig 7; the
// remaining 30-40% varies with personality.
func Subjects() []Subject {
	return []Subject{
		{
			ID:          1,
			Description: "high agreeableness and willingness to trust",
			Profile:     BigFive{Openness: 0.55, Conscientiousness: 0.50, Extraversion: 0.45, Agreeableness: 0.90, EmotionalStab: 0.55},
			Mood:        emotion.CalmMood,
			Usage: usage(map[Category]float64{
				Messaging: 0.38, Browser: 0.26,
				MusicRadio: 0.08, SharingCloud: 0.07, TV: 0.05, VideoApps: 0.04,
				SocialNetworks: 0.03, EMail: 0.02, Calling: 0.02, Settings: 0.01,
				Foto: 0.01, Gallery: 0.01, Camera: 0.005, Shopping: 0.005,
				TimerClocks: 0.005, Calculator: 0.002, Video: 0.003,
				SystemApp: 0.005, CalendarApps: 0.003, Transportation: 0.002,
			}),
		},
		{
			ID:          2,
			Description: "moderate personality with median trait scores",
			Profile:     BigFive{Openness: 0.50, Conscientiousness: 0.50, Extraversion: 0.50, Agreeableness: 0.50, EmotionalStab: 0.50},
			Mood:        emotion.CalmMood,
			Usage: usage(map[Category]float64{
				Messaging: 0.36, Browser: 0.25,
				SharingCloud: 0.06, TV: 0.06, VideoApps: 0.06,
				SocialNetworks: 0.04, EMail: 0.03, MusicRadio: 0.03,
				Calling: 0.02, Settings: 0.02, Gallery: 0.02, Foto: 0.01,
				Camera: 0.01, Shopping: 0.01, TimerClocks: 0.005,
				Calculator: 0.005, Video: 0.005, SystemApp: 0.005,
				CalendarApps: 0.005, Transportation: 0.005,
			}),
		},
		{
			ID:          3,
			Description: "high cheerfulness and positive mood",
			Profile:     BigFive{Openness: 0.60, Conscientiousness: 0.45, Extraversion: 0.85, Agreeableness: 0.60, EmotionalStab: 0.70},
			Mood:        emotion.Excited,
			Usage: usage(map[Category]float64{
				Messaging: 0.34, Browser: 0.26,
				Calling: 0.10, Transportation: 0.07, SocialNetworks: 0.06,
				MusicRadio: 0.04, Camera: 0.03, Foto: 0.02, Gallery: 0.02,
				Shopping: 0.02, EMail: 0.01, Settings: 0.005, TV: 0.005,
				VideoApps: 0.01, SharingCloud: 0.01, TimerClocks: 0.005,
				Calculator: 0.002, Video: 0.005, SystemApp: 0.005,
				CalendarApps: 0.003,
			}),
		},
		{
			ID:          4,
			Description: "median scores with an even usage pattern",
			Profile:     BigFive{Openness: 0.50, Conscientiousness: 0.55, Extraversion: 0.45, Agreeableness: 0.50, EmotionalStab: 0.50},
			Mood:        emotion.CalmMood,
			Usage: usage(map[Category]float64{
				Messaging: 0.33, Browser: 0.27,
				EMail: 0.04, SocialNetworks: 0.04, Gallery: 0.035,
				SharingCloud: 0.035, MusicRadio: 0.03, TV: 0.03,
				VideoApps: 0.03, Settings: 0.025, Calling: 0.025,
				Foto: 0.02, Camera: 0.02, Shopping: 0.02,
				TimerClocks: 0.015, Calculator: 0.01, Video: 0.01,
				SystemApp: 0.01, CalendarApps: 0.01, Transportation: 0.01,
			}),
		},
	}
}

// usage normalizes a category mix to sum exactly to 1.
func usage(m map[Category]float64) map[Category]float64 {
	// Sum in sorted key order: float addition is not associative, so a
	// map-order sum varies in the last ulp between runs, and that ulp
	// propagates into every derived affect probability — enough to flip
	// near-tie kill-policy decisions downstream.
	keys := make([]Category, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	out := make(map[Category]float64, len(m))
	for k, v := range m {
		out[k] = v / sum
	}
	return out
}

// SubjectByMood returns the subject the paper uses to emulate a mood:
// subject 3 for excited, subject 4 for calm.
func SubjectByMood(m emotion.Mood) (Subject, error) {
	switch m {
	case emotion.Excited:
		return Subjects()[2], nil
	case emotion.CalmMood:
		return Subjects()[3], nil
	}
	return Subject{}, fmt.Errorf("personality: no subject for mood %v", m)
}

// TopCategories returns a subject's n most used categories, descending.
func (s Subject) TopCategories(n int) []Category {
	cats := Categories()
	sort.SliceStable(cats, func(i, j int) bool { return s.Usage[cats[i]] > s.Usage[cats[j]] })
	if n > len(cats) {
		n = len(cats)
	}
	return cats[:n]
}

// MessagingBrowsingShare returns the combined messaging + browser usage
// fraction, which Fig 7 reports at 60-70% for every subject.
func (s Subject) MessagingBrowsingShare() float64 {
	return s.Usage[Messaging] + s.Usage[Browser]
}

package personality

import (
	"math"
	"testing"

	"affectedge/internal/emotion"
)

func TestSubjectsCount(t *testing.T) {
	subs := Subjects()
	if len(subs) != 4 {
		t.Fatalf("%d subjects, want 4", len(subs))
	}
	for i, s := range subs {
		if s.ID != i+1 {
			t.Errorf("subject %d has ID %d", i, s.ID)
		}
	}
}

func TestUsageDistributionsNormalized(t *testing.T) {
	for _, s := range Subjects() {
		var sum float64
		for _, v := range s.Usage {
			if v < 0 {
				t.Errorf("subject %d has negative usage", s.ID)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("subject %d usage sums to %g", s.ID, sum)
		}
		if len(s.Usage) != 20 {
			t.Errorf("subject %d covers %d categories, want 20", s.ID, len(s.Usage))
		}
	}
}

func TestMessagingBrowsingDominates(t *testing.T) {
	// Fig 7: messaging + internet browsing is 60-70% for every subject.
	for _, s := range Subjects() {
		share := s.MessagingBrowsingShare()
		if share < 0.58 || share > 0.72 {
			t.Errorf("subject %d messaging+browsing share %.2f outside [0.58, 0.72]", s.ID, share)
		}
	}
}

func TestSubjectTraits(t *testing.T) {
	subs := Subjects()
	// Subject 1: high agreeableness.
	if subs[0].Profile.Agreeableness < 0.8 {
		t.Error("subject 1 should score high on agreeableness")
	}
	// Subject 3: high extraversion (cheerfulness proxy) and excited mood.
	if subs[2].Profile.Extraversion < 0.8 {
		t.Error("subject 3 should score high on extraversion")
	}
	if subs[2].Mood != emotion.Excited {
		t.Error("subject 3 should emulate the excited mood")
	}
	if subs[3].Mood != emotion.CalmMood {
		t.Error("subject 4 should emulate the calm mood")
	}
}

func TestPersonalityShapesUsage(t *testing.T) {
	subs := Subjects()
	// Subject 1 (trusting): radio, sharing cloud and TV video above subject 3.
	if subs[0].Usage[MusicRadio] <= subs[2].Usage[MusicRadio] {
		t.Error("subject 1 should use radio more than subject 3")
	}
	if subs[0].Usage[SharingCloud] <= subs[2].Usage[SharingCloud] {
		t.Error("subject 1 should use sharing cloud more than subject 3")
	}
	// Subject 3 (cheerful): calling and shared transportation above others.
	for _, other := range []int{0, 1, 3} {
		if subs[2].Usage[Calling] <= subs[other].Usage[Calling] {
			t.Errorf("subject 3 should call more than subject %d", other+1)
		}
		if subs[2].Usage[Transportation] <= subs[other].Usage[Transportation] {
			t.Errorf("subject 3 should use transportation more than subject %d", other+1)
		}
	}
}

func TestSubjectByMood(t *testing.T) {
	ex, err := SubjectByMood(emotion.Excited)
	if err != nil || ex.ID != 3 {
		t.Errorf("excited -> subject %d (%v), want 3", ex.ID, err)
	}
	ca, err := SubjectByMood(emotion.CalmMood)
	if err != nil || ca.ID != 4 {
		t.Errorf("calm -> subject %d (%v), want 4", ca.ID, err)
	}
	if _, err := SubjectByMood(emotion.Mood(9)); err == nil {
		t.Error("invalid mood accepted")
	}
}

func TestTopCategories(t *testing.T) {
	for _, s := range Subjects() {
		top := s.TopCategories(3)
		if len(top) != 3 {
			t.Fatalf("top-3 has %d entries", len(top))
		}
		if top[0] != Messaging {
			t.Errorf("subject %d top category %v, want messaging", s.ID, top[0])
		}
		if top[1] != Browser {
			t.Errorf("subject %d second category %v, want browser", s.ID, top[1])
		}
		// Descending order.
		if s.Usage[top[1]] > s.Usage[top[0]] || s.Usage[top[2]] > s.Usage[top[1]] {
			t.Errorf("subject %d top categories not descending", s.ID)
		}
	}
	all := Subjects()[0].TopCategories(99)
	if len(all) != 20 {
		t.Errorf("over-long top request returned %d", len(all))
	}
}

func TestCategoriesStable(t *testing.T) {
	a, b := Categories(), Categories()
	if len(a) != 20 {
		t.Fatalf("%d categories", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("category order unstable")
		}
	}
}

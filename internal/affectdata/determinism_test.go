package affectdata

import (
	"testing"

	"affectedge/internal/parallel"
)

// generateAt synthesizes a corpus slice at a given worker-pool size.
func generateAt(t *testing.T, workers int, seed int64, n int) []Clip {
	t.Helper()
	defer parallel.SetWorkers(parallel.SetWorkers(workers))
	clips, err := EMOVO().Generate(seed, n)
	if err != nil {
		t.Fatal(err)
	}
	return clips
}

// TestGenerateParallelMatchesSerial is the corpus half of the repo's
// determinism contract: for a fixed seed, Spec.Generate must produce
// bit-identical clips whether the pool runs serial or wide. Each clip
// draws from its own sub-seeded RNG, so the result cannot depend on how
// clips are scheduled across workers.
func TestGenerateParallelMatchesSerial(t *testing.T) {
	serial := generateAt(t, 1, 99, 42)
	wide := generateAt(t, 8, 99, 42)
	if len(serial) != len(wide) {
		t.Fatalf("clip counts differ: %d serial vs %d parallel", len(serial), len(wide))
	}
	for i := range serial {
		if serial[i].Label != wide[i].Label || serial[i].Actor != wide[i].Actor {
			t.Fatalf("clip %d metadata differs: %+v vs %+v",
				i, serial[i].Label, wide[i].Label)
		}
		if len(serial[i].Wave) != len(wide[i].Wave) {
			t.Fatalf("clip %d lengths differ: %d vs %d",
				i, len(serial[i].Wave), len(wide[i].Wave))
		}
		for j := range serial[i].Wave {
			if serial[i].Wave[j] != wide[i].Wave[j] {
				t.Fatalf("clip %d sample %d differs: %g vs %g",
					i, j, serial[i].Wave[j], wide[i].Wave[j])
			}
		}
	}
}

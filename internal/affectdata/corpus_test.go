package affectdata

import (
	"math"
	"testing"

	"affectedge/internal/dsp"
	"affectedge/internal/emotion"
)

func TestCorpusSpecs(t *testing.T) {
	cases := []struct {
		spec   Spec
		labels int
		actors int
		total  int
	}{
		{RAVDESS(), 8, 24, 7356},
		{EMOVO(), 7, 6, 588},
		{CREMAD(), 6, 91, 7442},
	}
	for _, c := range cases {
		if len(c.spec.Labels) != c.labels {
			t.Errorf("%s has %d labels, want %d", c.spec.Name, len(c.spec.Labels), c.labels)
		}
		if c.spec.Actors != c.actors {
			t.Errorf("%s has %d actors, want %d", c.spec.Name, c.spec.Actors, c.actors)
		}
		if c.spec.TotalClips != c.total {
			t.Errorf("%s has %d clips, want %d", c.spec.Name, c.spec.TotalClips, c.total)
		}
	}
	if len(Corpora()) != 3 {
		t.Error("Corpora() should list 3 specs")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := EMOVO()
	a, err := spec.Generate(42, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate(42, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("generated %d/%d clips, want 20", len(a), len(b))
	}
	for i := range a {
		if a[i].Label != b[i].Label || a[i].Actor != b[i].Actor {
			t.Fatal("labels/actors not deterministic")
		}
		if len(a[i].Wave) != len(b[i].Wave) {
			t.Fatal("wave lengths not deterministic")
		}
		for j := range a[i].Wave {
			if a[i].Wave[j] != b[i].Wave[j] {
				t.Fatal("waves not deterministic")
			}
		}
	}
	c, err := spec.Generate(43, 20)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range a[0].Wave {
		if j < len(c[0].Wave) && a[0].Wave[j] != c[0].Wave[j] {
			same = false
			break
		}
	}
	if same && len(a[0].Wave) == len(c[0].Wave) {
		t.Error("different seeds produced identical waves")
	}
}

func TestGenerateClassBalance(t *testing.T) {
	spec := CREMAD()
	clips, err := spec.Generate(1, 120)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[emotion.Label]int{}
	for _, c := range clips {
		counts[c.Label]++
	}
	for _, l := range spec.Labels {
		if counts[l] != 120/len(spec.Labels) {
			t.Errorf("label %v count %d, want %d", l, counts[l], 120/len(spec.Labels))
		}
	}
}

func TestGenerateWaveProperties(t *testing.T) {
	spec := RAVDESS()
	clips, err := spec.Generate(7, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range clips {
		if len(c.Wave) < int(spec.SampleRate*0.8) {
			t.Fatalf("clip too short: %d samples", len(c.Wave))
		}
		var maxAbs float64
		for _, v := range c.Wave {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("wave has NaN/Inf")
			}
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			t.Fatal("silent clip")
		}
		if maxAbs > 20 {
			t.Fatalf("wave amplitude %g unreasonably large", maxAbs)
		}
	}
}

func TestEmotionsAreAcousticallySeparable(t *testing.T) {
	// Happy (200 Hz base) and sad (110 Hz base) must differ in measured
	// pitch and energy; this is the premise of the classification study.
	spec := RAVDESS()
	clips, err := spec.Generate(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	var happyPitch, sadPitch, happyRMS, sadRMS []float64
	for _, c := range clips {
		p := dsp.EstimatePitch(c.Wave, spec.SampleRate, 60, 500)
		r := dsp.RMS(c.Wave)
		switch c.Label {
		case emotion.Happy:
			happyPitch = append(happyPitch, p)
			happyRMS = append(happyRMS, r)
		case emotion.Sad:
			sadPitch = append(sadPitch, p)
			sadRMS = append(sadRMS, r)
		}
	}
	if len(happyPitch) == 0 || len(sadPitch) == 0 {
		t.Fatal("no happy/sad clips generated")
	}
	if dsp.Mean(happyPitch) <= dsp.Mean(sadPitch) {
		t.Errorf("happy pitch %g should exceed sad pitch %g",
			dsp.Mean(happyPitch), dsp.Mean(sadPitch))
	}
	if dsp.Mean(happyRMS) <= dsp.Mean(sadRMS) {
		t.Errorf("happy RMS %g should exceed sad RMS %g",
			dsp.Mean(happyRMS), dsp.Mean(sadRMS))
	}
}

func TestGenerateInvalidSpec(t *testing.T) {
	bad := Spec{Name: "bad"}
	if _, err := bad.Generate(1, 10); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestSplit(t *testing.T) {
	spec := EMOVO()
	clips, err := spec.Generate(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	train, test := Split(clips, 0.2)
	if len(train)+len(test) != 100 {
		t.Fatalf("split loses clips: %d + %d", len(train), len(test))
	}
	if len(test) < 15 || len(test) > 25 {
		t.Errorf("test fraction off: %d/100", len(test))
	}
	tr, te := Split(clips, 0)
	if len(tr) != 100 || te != nil {
		t.Error("zero test fraction should keep everything in train")
	}
	tr, te = Split(clips, 1)
	if tr != nil || len(te) != 100 {
		t.Error("full test fraction should move everything to test")
	}
}

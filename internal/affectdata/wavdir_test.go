package affectdata

import (
	"os"
	"path/filepath"
	"testing"

	"affectedge/internal/dsp"
	"affectedge/internal/emotion"
)

func TestLoadWAVDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := EMOVO()
	clips, err := spec.Generate(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range clips {
		name := filepath.Join(dir, "clip_"+string(rune('a'+i))+"_actor0"+string(rune('0'+c.Actor))+"_"+c.Label.String()+".wav")
		f, err := os.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := dsp.WriteWAV(f, c.Wave, int(spec.SampleRate)); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	// An unlabeled file is skipped, not fatal.
	junk, err := os.Create(filepath.Join(dir, "readme_notes.wav"))
	if err != nil {
		t.Fatal(err)
	}
	if err := dsp.WriteWAV(junk, make([]float64, 100), 8000); err != nil {
		t.Fatal(err)
	}
	junk.Close()

	loaded, rate, err := LoadWAVDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 8000 {
		t.Errorf("rate %g", rate)
	}
	if len(loaded) != 6 {
		t.Fatalf("loaded %d clips, want 6", len(loaded))
	}
	labels := map[emotion.Label]bool{}
	for _, c := range loaded {
		labels[c.Label] = true
		if len(c.Wave) < 1000 {
			t.Error("clip too short after load")
		}
	}
	if len(labels) < 4 {
		t.Errorf("only %d distinct labels recovered", len(labels))
	}
}

func TestLoadWAVDirResamples(t *testing.T) {
	dir := t.TempDir()
	wave := make([]float64, 8000)
	for i := range wave {
		wave[i] = 0.5
	}
	f, err := os.Create(filepath.Join(dir, "a_happy.wav"))
	if err != nil {
		t.Fatal(err)
	}
	if err := dsp.WriteWAV(f, wave, 16000); err != nil {
		t.Fatal(err)
	}
	f.Close()
	loaded, rate, err := LoadWAVDir(dir, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 8000 {
		t.Errorf("rate %g", rate)
	}
	if got := len(loaded[0].Wave); got < 3900 || got > 4100 {
		t.Errorf("resampled length %d, want ~4000", got)
	}
}

func TestLoadWAVDirErrors(t *testing.T) {
	if _, _, err := LoadWAVDir("/nonexistent-dir-xyz", 0); err == nil {
		t.Error("missing dir accepted")
	}
	empty := t.TempDir()
	if _, _, err := LoadWAVDir(empty, 0); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestActorFromName(t *testing.T) {
	cases := map[string]int{
		"x_actor07_sad.wav": 7,
		"actor123_happy":    123,
		"no_id_happy.wav":   0,
	}
	for name, want := range cases {
		if got := actorFromName(name); got != want {
			t.Errorf("actorFromName(%q) = %d, want %d", name, got, want)
		}
	}
}

// Package affectdata synthesizes emotional-speech corpora shaped like the
// three datasets the paper evaluates on — RAVDESS, EMOVO, and CREMA-D —
// which are not redistributable here. Each corpus is generated
// deterministically from a seed with the original's actor count, label set,
// and approximate size.
//
// Clips are synthesized with per-emotion prosody signatures (fundamental
// frequency level and *contour*, energy level and articulation rate,
// tremor, breathiness) plus per-actor voice variation, random lead-in
// silence, and additive noise. The temporal structure matters: several
// emotions differ mainly in their pitch/energy contours over time, which is
// what lets sequence models (CNN/LSTM) outperform a flattened MLP exactly
// as the paper observes in Fig 3b.
package affectdata

import (
	"fmt"
	"math"
	"math/rand"

	"affectedge/internal/emotion"
	"affectedge/internal/parallel"
)

// Clip is one labelled synthetic utterance.
type Clip struct {
	Wave  []float64
	Label emotion.Label
	Actor int
}

// Spec describes a corpus to synthesize.
type Spec struct {
	Name       string
	Labels     []emotion.Label
	Actors     int
	TotalClips int     // full-corpus size (matching the original's scale)
	SampleRate float64 // Hz
	MeanDur    float64 // seconds
	NoiseLevel float64 // additive white-noise amplitude
}

// RAVDESS returns the spec of the Ryerson audio-visual database: 24 actors,
// 7356 recordings, 8 emotion classes.
func RAVDESS() Spec {
	return Spec{
		Name: "RAVDESS",
		Labels: []emotion.Label{
			emotion.Neutral, emotion.Calm, emotion.Happy, emotion.Sad,
			emotion.Angry, emotion.Fearful, emotion.Disgust, emotion.Surprised,
		},
		Actors:     24,
		TotalClips: 7356,
		SampleRate: 8000,
		MeanDur:    1.2,
		NoiseLevel: 0.10,
	}
}

// EMOVO returns the spec of the Italian EMOVO corpus: 6 actors, 14
// sentences across 7 emotional states (588 clips).
func EMOVO() Spec {
	return Spec{
		Name: "EMOVO",
		Labels: []emotion.Label{
			emotion.Neutral, emotion.Happy, emotion.Sad, emotion.Angry,
			emotion.Fearful, emotion.Disgust, emotion.Surprised,
		},
		Actors:     6,
		TotalClips: 588,
		SampleRate: 8000,
		MeanDur:    1.2,
		NoiseLevel: 0.10,
	}
}

// CREMAD returns the spec of the crowd-sourced CREMA-D corpus: 91 actors,
// 7442 clips, 6 emotion classes.
func CREMAD() Spec {
	return Spec{
		Name: "CREMA-D",
		Labels: []emotion.Label{
			emotion.Neutral, emotion.Happy, emotion.Sad,
			emotion.Angry, emotion.Fearful, emotion.Disgust,
		},
		Actors:     91,
		TotalClips: 7442,
		SampleRate: 8000,
		MeanDur:    1.1,
		NoiseLevel: 0.16, // crowd-sourced recordings are noisier
	}
}

// Corpora returns the three corpus specs in the paper's Fig 3b order.
func Corpora() []Spec { return []Spec{CREMAD(), EMOVO(), RAVDESS()} }

// signature is a per-emotion prosody template.
type signature struct {
	f0       float64                 // base fundamental, Hz
	contour  func(u float64) float64 // f0 multiplier over normalized time u in [0,1]
	energy   float64                 // overall amplitude in (0,1]
	envShape func(u float64) float64 // slow amplitude envelope
	tempo    float64                 // syllables per second
	tremor   float64                 // pitch tremor depth (fearful voices)
	breath   float64                 // breathiness: noise mixed with the harmonics
	rolloff  float64                 // harmonic amplitude decay (higher = darker voice)
	jitter   float64                 // cycle-to-cycle pitch randomness
}

func flat(float64) float64      { return 1 }
func rising(u float64) float64  { return 0.85 + 0.4*u }
func falling(u float64) float64 { return 1.15 - 0.4*u }
func lateRise(u float64) float64 {
	if u < 0.7 {
		return 0.95
	}
	return 0.95 + 1.1*(u-0.7)
}

var signatures = map[emotion.Label]signature{
	emotion.Neutral: {
		f0: 140, contour: flat, energy: 0.50, envShape: flat,
		tempo: 3.5, breath: 0.05, rolloff: 0.7, jitter: 0.01,
	},
	emotion.Calm: {
		f0: 120, contour: falling, energy: 0.35, envShape: flat,
		tempo: 2.5, breath: 0.08, rolloff: 0.8, jitter: 0.008,
	},
	emotion.Happy: {
		f0: 200, contour: rising, energy: 0.80,
		envShape: func(u float64) float64 { return 0.8 + 0.2*math.Sin(2*math.Pi*u) },
		tempo:    5.0, breath: 0.04, rolloff: 0.55, jitter: 0.02,
	},
	emotion.Sad: {
		f0: 110, contour: falling, energy: 0.30, envShape: falling,
		tempo: 2.0, breath: 0.15, rolloff: 0.9, jitter: 0.012,
	},
	emotion.Angry: {
		f0: 180, contour: flat, energy: 0.95,
		envShape: func(u float64) float64 { return 0.7 + 0.3*math.Abs(math.Sin(3*math.Pi*u)) },
		tempo:    5.5, breath: 0.03, rolloff: 0.4, jitter: 0.03,
	},
	emotion.Fearful: {
		f0: 220, contour: rising, energy: 0.50, envShape: flat,
		tempo: 4.5, tremor: 0.06, breath: 0.10, rolloff: 0.65, jitter: 0.035,
	},
	emotion.Disgust: {
		f0: 130, contour: falling, energy: 0.45, envShape: falling,
		tempo: 2.8, breath: 0.07, rolloff: 0.95, jitter: 0.02,
	},
	emotion.Surprised: {
		f0: 240, contour: lateRise, energy: 0.70, envShape: lateRise,
		tempo: 4.0, breath: 0.05, rolloff: 0.5, jitter: 0.018,
	},
}

// actorVoice is the per-actor voice deviation applied on top of the emotion
// signature, drawn once per actor index from the corpus seed.
type actorVoice struct {
	pitchMult, tempoMult, rolloffAdd float64
}

func voices(spec Spec, seed int64) []actorVoice {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	out := make([]actorVoice, spec.Actors)
	for i := range out {
		out[i] = actorVoice{
			pitchMult:  0.8 + 0.5*rng.Float64(),
			tempoMult:  0.85 + 0.3*rng.Float64(),
			rolloffAdd: 0.2*rng.Float64() - 0.1,
		}
	}
	return out
}

// Generate synthesizes n clips of the corpus (n <= 0 means the full
// TotalClips), deterministically for a given seed, cycling actors and
// labels so classes stay balanced.
//
// Synthesis fans out over the shared worker pool: a cheap serial pass
// draws one sub-seed per clip from the master RNG, then every clip is
// rendered from its own RNG. Output is therefore bit-identical for a
// fixed seed regardless of parallel.SetWorkers — clip i never observes
// how much randomness clip i-1 consumed.
func (s Spec) Generate(seed int64, n int) ([]Clip, error) {
	if len(s.Labels) == 0 || s.Actors <= 0 || s.SampleRate <= 0 || s.MeanDur <= 0 {
		return nil, fmt.Errorf("affectdata: invalid spec %+v", s)
	}
	if n <= 0 {
		n = s.TotalClips
	}
	rng := rand.New(rand.NewSource(seed))
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	vs := voices(s, seed)
	clips := make([]Clip, n)
	parallel.ForEach(n, func(i int) error {
		label := s.Labels[i%len(s.Labels)]
		actor := (i / len(s.Labels)) % s.Actors
		crng := rand.New(rand.NewSource(seeds[i]))
		clips[i] = Clip{
			Wave:  synthesize(crng, s, signatures[label], vs[actor]),
			Label: label,
			Actor: actor,
		}
		return nil
	})
	return clips, nil
}

// synthesize renders one utterance.
func synthesize(rng *rand.Rand, spec Spec, sig signature, v actorVoice) []float64 {
	dur := spec.MeanDur * (0.85 + 0.3*rng.Float64())
	lead := 0.55 * rng.Float64() // random lead-in silence: misaligns rigid models
	total := int((dur + lead) * spec.SampleRate)
	wave := make([]float64, total)
	start := int(lead * spec.SampleRate)

	f0 := sig.f0 * v.pitchMult * (0.95 + 0.1*rng.Float64())
	tempo := sig.tempo * v.tempoMult
	rolloff := math.Max(0.2, sig.rolloff+v.rolloffAdd)
	tremPhase := rng.Float64() * 2 * math.Pi

	var phase float64
	nVoiced := total - start
	for i := start; i < total; i++ {
		u := float64(i-start) / float64(nVoiced) // normalized utterance time
		t := float64(i-start) / spec.SampleRate

		// Instantaneous pitch: contour x tremor x jitter.
		f := f0 * sig.contour(u)
		if sig.tremor > 0 {
			f *= 1 + sig.tremor*math.Sin(2*math.Pi*6*t+tremPhase)
		}
		f *= 1 + sig.jitter*rng.NormFloat64()
		phase += 2 * math.Pi * f / spec.SampleRate

		// Harmonic stack with exponential rolloff.
		var sAcc float64
		for h := 1; h <= 5; h++ {
			sAcc += math.Exp(-rolloff*float64(h-1)) * math.Sin(float64(h)*phase)
		}

		// Syllabic amplitude modulation and slow envelope.
		syll := 0.5 * (1 - math.Cos(2*math.Pi*tempo*t))
		env := sig.energy * sig.envShape(u) * syll
		wave[i] = env*sAcc + sig.breath*env*rng.NormFloat64()
	}
	// Additive recording noise over the whole clip (including silence).
	for i := range wave {
		wave[i] += spec.NoiseLevel * rng.NormFloat64()
	}
	return wave
}

// Split partitions clips into train/test with the given test fraction,
// stratified per label (every period-th occurrence of each label goes to
// test) so both splits cover every class regardless of how labels cycle
// through the corpus.
func Split(clips []Clip, testFrac float64) (train, test []Clip) {
	if testFrac <= 0 {
		return clips, nil
	}
	if testFrac >= 1 {
		return nil, clips
	}
	period := int(math.Round(1 / testFrac))
	if period < 2 {
		period = 2
	}
	counts := map[emotion.Label]int{}
	for _, c := range clips {
		n := counts[c.Label]
		counts[c.Label] = n + 1
		if n%period == period-1 {
			test = append(test, c)
		} else {
			train = append(train, c)
		}
	}
	return train, test
}

package affectdata

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"affectedge/internal/dsp"
	"affectedge/internal/emotion"
)

// LoadWAVDir builds a corpus from real recordings: every .wav file in dir
// (mono 16-bit PCM) whose name contains an emotion label (e.g.
// "clip_007_happy.wav") becomes a clip. Files without a recognizable
// label are skipped; rate, when positive, resamples all clips to a common
// sample rate. This is the adoption path for users who own the actual
// RAVDESS/EMOVO/CREMA-D data the paper used.
func LoadWAVDir(dir string, rate float64) ([]Clip, float64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("affectdata: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(strings.ToLower(e.Name()), ".wav") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var clips []Clip
	var outRate float64
	for _, name := range names {
		label, ok := labelFromName(name)
		if !ok {
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, 0, err
		}
		wave, sr, err := dsp.ReadWAV(f)
		f.Close()
		if err != nil {
			return nil, 0, fmt.Errorf("affectdata: %s: %w", name, err)
		}
		target := rate
		if target <= 0 {
			target = float64(sr)
		}
		if float64(sr) != target {
			wave, err = dsp.Resample(wave, float64(sr), target)
			if err != nil {
				return nil, 0, err
			}
		}
		if outRate == 0 {
			outRate = target
		} else if outRate != target {
			return nil, 0, fmt.Errorf("affectdata: mixed sample rates (%g vs %g); pass an explicit rate", outRate, target)
		}
		clips = append(clips, Clip{Wave: wave, Label: label, Actor: actorFromName(name)})
	}
	if len(clips) == 0 {
		return nil, 0, fmt.Errorf("affectdata: no labelled .wav files in %s", dir)
	}
	return clips, outRate, nil
}

// labelFromName finds an emotion label word in a file name.
func labelFromName(name string) (emotion.Label, bool) {
	lower := strings.ToLower(name)
	for _, l := range emotion.Labels() {
		if strings.Contains(lower, l.String()) {
			return l, true
		}
	}
	return 0, false
}

// actorFromName extracts a numeric actor id from "actorNN" in the name,
// or 0 when absent.
func actorFromName(name string) int {
	lower := strings.ToLower(name)
	i := strings.Index(lower, "actor")
	if i < 0 {
		return 0
	}
	j := i + len("actor")
	var n int
	for j < len(lower) && lower[j] >= '0' && lower[j] <= '9' {
		n = n*10 + int(lower[j]-'0')
		j++
	}
	return n
}

package affectdata

import (
	"fmt"
	"math/rand"

	"affectedge/internal/emotion"
)

// SCSegment is one labelled span of a skin-conductance recording.
type SCSegment struct {
	StartMin float64
	EndMin   float64
	State    emotion.Attention
}

// SCTrace is a synthetic uulmMAC-style skin-conductance recording: a
// sampled SC signal (microsiemens) plus its ground-truth attention labels.
type SCTrace struct {
	SampleRate float64 // samples per second
	Samples    []float64
	Segments   []SCSegment
}

// UulmMACSchedule returns the 40-minute label timeline of the paper's
// playback case study (Fig 6 bottom): distracted 0-14 min, concentrated
// 14-20, tense 20-29, relaxed 29-40.
func UulmMACSchedule() []SCSegment {
	return []SCSegment{
		{0, 14, emotion.Distracted},
		{14, 20, emotion.Concentrated},
		{20, 29, emotion.Tense},
		{29, 40, emotion.Relaxed},
	}
}

// scLevel is the baseline tonic SC level (uS) per attention state; higher
// arousal raises skin conductance.
var scLevel = map[emotion.Attention]float64{
	emotion.Distracted:   2.0,
	emotion.Relaxed:      3.0,
	emotion.Concentrated: 5.5,
	emotion.Tense:        8.0,
}

// scrRate is the phasic response (SCR impulse) rate per minute per state.
var scrRate = map[emotion.Attention]float64{
	emotion.Distracted:   1,
	emotion.Relaxed:      2,
	emotion.Concentrated: 6,
	emotion.Tense:        10,
}

// GenerateSC synthesizes a skin-conductance trace over the given schedule
// at sampleRate Hz. The signal is tonic level (slow drift toward the
// state's SCL) plus phasic SCR impulses (fast rise, exponential decay) and
// sensor noise, which is how real SC recordings decompose.
func GenerateSC(schedule []SCSegment, sampleRate float64, seed int64) (*SCTrace, error) {
	if len(schedule) == 0 {
		return nil, fmt.Errorf("affectdata: empty SC schedule")
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("affectdata: SC sample rate %g must be positive", sampleRate)
	}
	for i := 1; i < len(schedule); i++ {
		if schedule[i].StartMin != schedule[i-1].EndMin {
			return nil, fmt.Errorf("affectdata: SC schedule has a gap at segment %d", i)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	totalMin := schedule[len(schedule)-1].EndMin
	n := int(totalMin * 60 * sampleRate)
	samples := make([]float64, n)

	level := scLevel[schedule[0].State]
	var scr float64       // current phasic component
	const tonicTau = 20.0 // seconds to drift toward the target SCL
	const scrDecay = 4.0  // seconds, phasic decay constant
	dt := 1 / sampleRate

	segIdx := 0
	for i := 0; i < n; i++ {
		tMin := float64(i) / sampleRate / 60
		for segIdx+1 < len(schedule) && tMin >= schedule[segIdx].EndMin {
			segIdx++
		}
		state := schedule[segIdx].State
		target := scLevel[state]
		level += (target - level) / tonicTau * dt
		// Poisson SCR impulses at the per-state rate.
		if rng.Float64() < scrRate[state]/60*dt {
			scr += 0.5 + rng.Float64()
		}
		scr -= scr / scrDecay * dt
		samples[i] = level + scr + 0.05*rng.NormFloat64()
	}
	return &SCTrace{SampleRate: sampleRate, Samples: samples, Segments: schedule}, nil
}

// StateAt returns the ground-truth attention state at a time (minutes).
func (tr *SCTrace) StateAt(minute float64) emotion.Attention {
	for _, s := range tr.Segments {
		if minute >= s.StartMin && minute < s.EndMin {
			return s.State
		}
	}
	return tr.Segments[len(tr.Segments)-1].State
}

// DurationMin returns the total trace duration in minutes.
func (tr *SCTrace) DurationMin() float64 {
	return tr.Segments[len(tr.Segments)-1].EndMin
}

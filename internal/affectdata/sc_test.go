package affectdata

import (
	"math"
	"testing"

	"affectedge/internal/dsp"
	"affectedge/internal/emotion"
)

func TestUulmMACSchedule(t *testing.T) {
	sched := UulmMACSchedule()
	if len(sched) != 4 {
		t.Fatalf("schedule has %d segments, want 4", len(sched))
	}
	wantStates := []emotion.Attention{
		emotion.Distracted, emotion.Concentrated, emotion.Tense, emotion.Relaxed,
	}
	wantBounds := [][2]float64{{0, 14}, {14, 20}, {20, 29}, {29, 40}}
	for i, s := range sched {
		if s.State != wantStates[i] {
			t.Errorf("segment %d state %v, want %v", i, s.State, wantStates[i])
		}
		if s.StartMin != wantBounds[i][0] || s.EndMin != wantBounds[i][1] {
			t.Errorf("segment %d bounds [%g,%g], want %v", i, s.StartMin, s.EndMin, wantBounds[i])
		}
	}
}

func TestGenerateSC(t *testing.T) {
	tr, err := GenerateSC(UulmMACSchedule(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tr.Samples), int(40*60*4); got != want {
		t.Fatalf("trace has %d samples, want %d", got, want)
	}
	if tr.DurationMin() != 40 {
		t.Errorf("duration %g, want 40", tr.DurationMin())
	}
	for _, v := range tr.Samples {
		if math.IsNaN(v) || v < -1 || v > 30 {
			t.Fatalf("implausible SC sample %g", v)
		}
	}
}

func TestGenerateSCStateLevels(t *testing.T) {
	// Mean SC in the tense segment must exceed the distracted segment —
	// that ordering is what lets SC magnitude drive the mode controller.
	tr, err := GenerateSC(UulmMACSchedule(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	segMean := func(startMin, endMin float64) float64 {
		lo := int(startMin * 60 * tr.SampleRate)
		hi := int(endMin * 60 * tr.SampleRate)
		return dsp.Mean(tr.Samples[lo:hi])
	}
	distracted := segMean(2, 14) // skip initial drift
	concentrated := segMean(16, 20)
	tense := segMean(23, 29)
	relaxed := segMean(33, 40)
	if !(distracted < relaxed && relaxed < concentrated && concentrated < tense) {
		t.Errorf("SC level ordering violated: distracted=%.2f relaxed=%.2f concentrated=%.2f tense=%.2f",
			distracted, relaxed, concentrated, tense)
	}
}

func TestGenerateSCErrors(t *testing.T) {
	if _, err := GenerateSC(nil, 4, 1); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := GenerateSC(UulmMACSchedule(), 0, 1); err == nil {
		t.Error("zero sample rate accepted")
	}
	gap := []SCSegment{{0, 5, emotion.Distracted}, {6, 10, emotion.Tense}}
	if _, err := GenerateSC(gap, 4, 1); err == nil {
		t.Error("gapped schedule accepted")
	}
}

func TestStateAt(t *testing.T) {
	tr, err := GenerateSC(UulmMACSchedule(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[float64]emotion.Attention{
		0:    emotion.Distracted,
		13.9: emotion.Distracted,
		14:   emotion.Concentrated,
		25:   emotion.Tense,
		39:   emotion.Relaxed,
		40:   emotion.Relaxed, // past the end clamps to last
	}
	for min, want := range cases {
		if got := tr.StateAt(min); got != want {
			t.Errorf("StateAt(%g) = %v, want %v", min, got, want)
		}
	}
}

func TestGenerateSCDeterministic(t *testing.T) {
	a, err := GenerateSC(UulmMACSchedule(), 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSC(UulmMACSchedule(), 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("SC trace not deterministic")
		}
	}
}

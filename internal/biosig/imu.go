package biosig

import (
	"fmt"
	"math"
	"math/rand"

	"affectedge/internal/dsp"
)

// ActivityLevel is the coarse physical-activity class the IMU channel
// reports; physical motion gates affect inference (a racing heart while
// running is exercise, not excitement).
type ActivityLevel int

// Activity levels.
const (
	ActivityStill  ActivityLevel = iota
	ActivityLight                // fidgeting, slow walking
	ActivityActive               // walking briskly / running
)

// String returns the level name.
func (a ActivityLevel) String() string {
	switch a {
	case ActivityStill:
		return "still"
	case ActivityLight:
		return "light"
	case ActivityActive:
		return "active"
	}
	return fmt.Sprintf("activity(%d)", int(a))
}

// IMUConfig parameterizes synthetic accelerometer generation.
type IMUConfig struct {
	SampleRate float64 // Hz
	Seed       int64
}

// DefaultIMUConfig returns a 50 Hz wrist accelerometer.
func DefaultIMUConfig() IMUConfig { return IMUConfig{SampleRate: 50, Seed: 1} }

// GenerateIMU synthesizes an accelerometer-magnitude trace (gravity
// removed, m/s^2) for a sequence of activity levels, each lasting
// spanSec seconds.
func GenerateIMU(levels []ActivityLevel, spanSec float64, cfg IMUConfig) ([]float64, error) {
	if len(levels) == 0 || spanSec <= 0 || cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("biosig: invalid IMU generation parameters")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	per := int(spanSec * cfg.SampleRate)
	out := make([]float64, 0, per*len(levels))
	for _, lv := range levels {
		var amp, cadence float64
		switch lv {
		case ActivityStill:
			amp, cadence = 0.05, 0
		case ActivityLight:
			amp, cadence = 0.5, 1.2
		case ActivityActive:
			amp, cadence = 2.5, 2.2
		default:
			return nil, fmt.Errorf("biosig: unknown activity level %d", int(lv))
		}
		phase := rng.Float64() * 2 * math.Pi
		for k := 0; k < per; k++ {
			t := float64(k) / cfg.SampleRate
			v := 0.03 * rng.NormFloat64() // sensor noise
			if cadence > 0 {
				// Step impacts at the cadence plus harmonics.
				v += amp * math.Abs(math.Sin(2*math.Pi*cadence*t+phase))
				v += 0.3 * amp * math.Abs(math.Sin(4*math.Pi*cadence*t+phase))
			} else {
				v += amp * rng.NormFloat64()
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// ClassifyActivity assigns an activity level to an accelerometer window
// by its RMS magnitude.
func ClassifyActivity(accel []float64) ActivityLevel {
	rms := dsp.RMS(accel)
	switch {
	case rms < 0.2:
		return ActivityStill
	case rms < 1.2:
		return ActivityLight
	default:
		return ActivityActive
	}
}

// Cadence estimates the dominant step frequency (Hz) of an accelerometer
// window, 0 when no periodicity stands out.
func Cadence(accel []float64, sampleRate float64) float64 {
	if len(accel) < 8 || sampleRate <= 0 {
		return 0
	}
	// Remove mean so the autocorrelation reflects oscillation.
	mean := dsp.Mean(accel)
	x := make([]float64, len(accel))
	for i, v := range accel {
		x[i] = v - mean
	}
	// Steps land at 0.5-5 Hz. Autocorrelation peaks at every multiple of
	// the period; picking the global maximum can land on a subharmonic,
	// so take the SHORTEST lag whose correlation is within 10% of the
	// best (harmonic disambiguation).
	minLag := int(sampleRate / 5)
	maxLag := int(sampleRate / 0.5)
	if maxLag >= len(x) {
		maxLag = len(x) - 1
	}
	if minLag < 1 || maxLag <= minLag {
		return 0
	}
	r := dsp.Autocorrelation(x, maxLag)
	if r[0] <= 0 {
		return 0
	}
	best := 0.0
	for lag := minLag; lag <= maxLag; lag++ {
		if r[lag] > best {
			best = r[lag]
		}
	}
	if best < 0.3*r[0] {
		return 0
	}
	for lag := minLag; lag <= maxLag; lag++ {
		if r[lag] >= 0.9*best {
			return sampleRate / float64(lag)
		}
	}
	return 0
}

// MotionGate reports whether affect inference should trust physiological
// arousal right now: heavy physical activity confounds HR and SC.
func MotionGate(level ActivityLevel) bool { return level != ActivityActive }

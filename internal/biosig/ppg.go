// Package biosig models the remaining wearable sensors of the paper's
// Fig 2 suite — the photoplethysmography (PPG) channel for heart rate and
// heart-rate variability, and the inertial measurement unit (IMU) for
// activity — plus a fusion step that maps the multimodal features onto the
// Russell circumplex for the system manager. Skin conductance lives in
// internal/sc; speech in internal/affect.
package biosig

import (
	"fmt"
	"math"
	"math/rand"

	"affectedge/internal/dsp"
	"affectedge/internal/emotion"
)

// PPGConfig parameterizes synthetic PPG generation.
type PPGConfig struct {
	SampleRate float64 // Hz (wearable PPG is typically 25-64 Hz)
	// RestingHR and HRPerArousal map arousal in [-1,1] to beats/min:
	// HR = RestingHR + HRPerArousal * arousal.
	RestingHR    float64
	HRPerArousal float64
	// HRVAtCalm is the beat-to-beat interval jitter (fraction) at arousal
	// -1; stress suppresses HRV, so jitter shrinks as arousal rises.
	HRVAtCalm float64
	Noise     float64
	Seed      int64
}

// DefaultPPGConfig returns a 32 Hz wrist-PPG model.
func DefaultPPGConfig() PPGConfig {
	return PPGConfig{
		SampleRate:   32,
		RestingHR:    68,
		HRPerArousal: 28,
		HRVAtCalm:    0.10,
		Noise:        0.03,
		Seed:         1,
	}
}

// GeneratePPG synthesizes a PPG waveform whose instantaneous heart rate
// follows arousal(t) (arousal sampled at arousalRate Hz, values in
// [-1, 1]). It returns the waveform at cfg.SampleRate.
func GeneratePPG(arousal []float64, arousalRate float64, cfg PPGConfig) ([]float64, error) {
	if len(arousal) == 0 {
		return nil, fmt.Errorf("biosig: empty arousal trace")
	}
	if arousalRate <= 0 || cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("biosig: rates must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	durSec := float64(len(arousal)) / arousalRate
	n := int(durSec * cfg.SampleRate)
	out := make([]float64, n)
	arousalAt := func(tSec float64) float64 {
		idx := int(tSec * arousalRate)
		if idx >= len(arousal) {
			idx = len(arousal) - 1
		}
		a := arousal[idx]
		if a > 1 {
			a = 1
		}
		if a < -1 {
			a = -1
		}
		return a
	}
	// Beat-by-beat: place a pulse at each beat onset; the next interval
	// comes from the current HR with HRV jitter.
	tBeat := 0.0
	for tBeat < durSec {
		a := arousalAt(tBeat)
		hr := cfg.RestingHR + cfg.HRPerArousal*a
		if hr < 35 {
			hr = 35
		}
		ibi := 60 / hr // seconds
		jitter := cfg.HRVAtCalm * (1 - a) / 2
		ibi *= 1 + jitter*rng.NormFloat64()
		if ibi < 0.3 {
			ibi = 0.3
		}
		// Render this beat's pulse: fast systolic rise, slower decay,
		// small dicrotic bump.
		start := int(tBeat * cfg.SampleRate)
		for k := 0; k < int(ibi*cfg.SampleRate)+1 && start+k < n; k++ {
			u := float64(k) / (ibi * cfg.SampleRate)
			v := math.Exp(-8*u) * math.Sin(math.Pi*math.Min(1, u*3))
			v += 0.08 * math.Exp(-(u-0.45)*(u-0.45)/0.004) // dicrotic notch
			out[start+k] += v
		}
		tBeat += ibi
	}
	for i := range out {
		out[i] += cfg.Noise * rng.NormFloat64()
	}
	return out, nil
}

// HRStats summarizes a PPG analysis window.
type HRStats struct {
	BPM   float64
	SDNN  float64 // standard deviation of beat intervals (seconds)
	RMSSD float64 // root mean square of successive interval differences
	Beats int
}

// EstimateHR detects pulse peaks in a PPG window and derives heart rate
// and HRV statistics.
func EstimateHR(ppg []float64, sampleRate float64) (HRStats, error) {
	if len(ppg) == 0 {
		return HRStats{}, fmt.Errorf("biosig: empty PPG window")
	}
	if sampleRate <= 0 {
		return HRStats{}, fmt.Errorf("biosig: sample rate must be positive")
	}
	// Smooth, then detect peaks above an adaptive threshold with a
	// physiological refractory (max 200 BPM -> 0.3 s).
	smooth := dsp.Smooth(ppg, int(sampleRate*0.1))
	// Threshold at 60% of the strong-peak level so dicrotic bumps and
	// noise stay below it.
	th := 0.6 * dsp.Percentile(smooth, 98)
	refractory := int(0.3 * sampleRate)
	if refractory < 1 {
		refractory = 1
	}
	var peaks []int
	last := -refractory
	for i := 1; i+1 < len(smooth); i++ {
		if smooth[i] > th && smooth[i] >= smooth[i-1] && smooth[i] > smooth[i+1] && i-last >= refractory {
			peaks = append(peaks, i)
			last = i
		}
	}
	st := HRStats{Beats: len(peaks)}
	if len(peaks) < 2 {
		return st, nil
	}
	intervals := make([]float64, len(peaks)-1)
	for i := 1; i < len(peaks); i++ {
		intervals[i-1] = float64(peaks[i]-peaks[i-1]) / sampleRate
	}
	st.BPM = 60 / dsp.Mean(intervals)
	st.SDNN = math.Sqrt(dsp.Variance(intervals))
	var ssd float64
	for i := 1; i < len(intervals); i++ {
		d := intervals[i] - intervals[i-1]
		ssd += d * d
	}
	if len(intervals) > 1 {
		st.RMSSD = math.Sqrt(ssd / float64(len(intervals)-1))
	}
	return st, nil
}

// ArousalFromHR maps a heart-rate estimate back to an arousal value in
// [-1, 1] under the generation model's assumptions.
func ArousalFromHR(st HRStats, cfg PPGConfig) float64 {
	if cfg.HRPerArousal == 0 {
		return 0
	}
	a := (st.BPM - cfg.RestingHR) / cfg.HRPerArousal
	if a > 1 {
		a = 1
	}
	if a < -1 {
		a = -1
	}
	return a
}

// FuseArousal combines per-modality arousal estimates with weights,
// skipping NaNs, and returns the circumplex point for the manager.
func FuseArousal(estimates map[string]float64, weights map[string]float64) emotion.Point {
	var num, den float64
	for name, a := range estimates {
		if math.IsNaN(a) {
			continue
		}
		w := weights[name]
		if w <= 0 {
			w = 1
		}
		num += w * a
		den += w
	}
	if den == 0 {
		return emotion.Point{}
	}
	a := num / den
	if a > 1 {
		a = 1
	}
	if a < -1 {
		a = -1
	}
	return emotion.Point{Arousal: a}
}

package biosig

import (
	"math"
	"testing"

	"affectedge/internal/emotion"
)

func constantArousal(a float64, seconds int) []float64 {
	out := make([]float64, seconds)
	for i := range out {
		out[i] = a
	}
	return out
}

func TestGeneratePPGAndRecoverHR(t *testing.T) {
	cfg := DefaultPPGConfig()
	for _, a := range []float64{-1, 0, 1} {
		ppg, err := GeneratePPG(constantArousal(a, 60), 1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := EstimateHR(ppg, cfg.SampleRate)
		if err != nil {
			t.Fatal(err)
		}
		want := cfg.RestingHR + cfg.HRPerArousal*a
		if math.Abs(st.BPM-want) > 8 {
			t.Errorf("arousal %g: estimated %.1f BPM, want ~%.0f", a, st.BPM, want)
		}
		if st.Beats < 30 {
			t.Errorf("arousal %g: only %d beats in a minute", a, st.Beats)
		}
	}
}

func TestHRVShrinksWithArousal(t *testing.T) {
	cfg := DefaultPPGConfig()
	calm, err := GeneratePPG(constantArousal(-1, 120), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tense, err := GeneratePPG(constantArousal(1, 120), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	calmStats, err := EstimateHR(calm, cfg.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	tenseStats, err := EstimateHR(tense, cfg.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	if calmStats.SDNN <= tenseStats.SDNN {
		t.Errorf("calm SDNN %.4f not above tense %.4f (stress suppresses HRV)",
			calmStats.SDNN, tenseStats.SDNN)
	}
}

func TestArousalRoundTrip(t *testing.T) {
	cfg := DefaultPPGConfig()
	for _, a := range []float64{-0.8, 0, 0.8} {
		ppg, err := GeneratePPG(constantArousal(a, 90), 1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := EstimateHR(ppg, cfg.SampleRate)
		if err != nil {
			t.Fatal(err)
		}
		got := ArousalFromHR(st, cfg)
		if math.Abs(got-a) > 0.3 {
			t.Errorf("arousal %g recovered as %g", a, got)
		}
	}
}

func TestPPGValidation(t *testing.T) {
	if _, err := GeneratePPG(nil, 1, DefaultPPGConfig()); err == nil {
		t.Error("empty arousal accepted")
	}
	if _, err := GeneratePPG([]float64{0}, 0, DefaultPPGConfig()); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := EstimateHR(nil, 32); err == nil {
		t.Error("empty PPG accepted")
	}
}

func TestIMUActivityClassification(t *testing.T) {
	cfg := DefaultIMUConfig()
	levels := []ActivityLevel{ActivityStill, ActivityLight, ActivityActive}
	trace, err := GenerateIMU(levels, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	per := int(10 * cfg.SampleRate)
	for i, want := range levels {
		window := trace[i*per : (i+1)*per]
		if got := ClassifyActivity(window); got != want {
			t.Errorf("segment %d classified %v, want %v", i, got, want)
		}
	}
}

func TestIMUCadence(t *testing.T) {
	cfg := DefaultIMUConfig()
	trace, err := GenerateIMU([]ActivityLevel{ActivityActive}, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := Cadence(trace, cfg.SampleRate)
	// |sin| at 2.2 Hz has fundamental 4.4 Hz; accept either 2.2 or 4.4.
	if math.Abs(c-2.2) > 0.4 && math.Abs(c-4.4) > 0.6 {
		t.Errorf("cadence %.2f Hz, want ~2.2 or ~4.4", c)
	}
	still, err := GenerateIMU([]ActivityLevel{ActivityStill}, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c := Cadence(still, cfg.SampleRate); c != 0 {
		t.Errorf("still cadence %.2f, want 0", c)
	}
}

func TestMotionGate(t *testing.T) {
	if !MotionGate(ActivityStill) || !MotionGate(ActivityLight) {
		t.Error("low activity should pass the gate")
	}
	if MotionGate(ActivityActive) {
		t.Error("heavy activity should block affect inference")
	}
}

func TestFuseArousal(t *testing.T) {
	p := FuseArousal(map[string]float64{"hr": 0.8, "sc": 0.4}, map[string]float64{"hr": 1, "sc": 1})
	if math.Abs(p.Arousal-0.6) > 1e-9 {
		t.Errorf("fused arousal %g, want 0.6", p.Arousal)
	}
	// Weighted.
	p = FuseArousal(map[string]float64{"hr": 1, "sc": 0}, map[string]float64{"hr": 3, "sc": 1})
	if math.Abs(p.Arousal-0.75) > 1e-9 {
		t.Errorf("weighted fusion %g, want 0.75", p.Arousal)
	}
	// NaN skipped.
	p = FuseArousal(map[string]float64{"hr": math.NaN(), "sc": 0.5}, nil)
	if math.Abs(p.Arousal-0.5) > 1e-9 {
		t.Errorf("NaN not skipped: %g", p.Arousal)
	}
	// Empty -> neutral.
	if FuseArousal(nil, nil) != (emotion.Point{}) {
		t.Error("empty fusion should be neutral")
	}
	// Clamped.
	p = FuseArousal(map[string]float64{"hr": 5}, nil)
	if p.Arousal != 1 {
		t.Errorf("fusion not clamped: %g", p.Arousal)
	}
}

func TestIMUValidation(t *testing.T) {
	if _, err := GenerateIMU(nil, 10, DefaultIMUConfig()); err == nil {
		t.Error("empty levels accepted")
	}
	if _, err := GenerateIMU([]ActivityLevel{ActivityStill}, 0, DefaultIMUConfig()); err == nil {
		t.Error("zero span accepted")
	}
	if _, err := GenerateIMU([]ActivityLevel{ActivityLevel(9)}, 1, DefaultIMUConfig()); err == nil {
		t.Error("unknown level accepted")
	}
}

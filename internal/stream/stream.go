// Package stream provides the bounded FIFO that connects the pipeline
// stages of the streaming ingest paths: chunked audio flowing into the
// incremental featurizer (internal/dsp), progressively decoded video
// frames flowing out of the chunked NAL decoder (internal/h264), and the
// fleet's chunk-granular observation rows.
//
// A FIFO is a fixed-capacity ring buffer with two interchangeable
// disciplines on the same queue:
//
//   - Blocking (Push/Pop/Write/Read): the producer sleeps on a full ring
//     and the consumer on an empty one — the classic staged-pipeline hookup
//     where backpressure propagates by descheduling the feeder.
//   - Non-blocking (TryPush/TryPop/TryWrite/TryRead): a full ring returns
//     ErrBackpressure immediately, matching the fleet's drop-and-count
//     ingress contract, and letting single-goroutine deterministic drivers
//     interleave feeding and draining without deadlock.
//
// Close is graceful: the consumer drains everything accepted before Close
// and then sees ErrClosed; producers (including ones blocked mid-Push) see
// ErrClosed immediately. The ring never grows, so a pipeline's peak memory
// is the sum of its stage windows — independent of stream length.
//
// FIFOs are safe for concurrent use. They are tuned for the single-
// producer/single-consumer shape of the ingest pipelines (one mutex, two
// condition variables); multiple producers or consumers are safe but
// serialize on the same lock.
package stream

import (
	"errors"
	"fmt"
	"sync"
)

// Sentinel errors of the FIFO API.
var (
	// ErrBackpressure reports a full ring on a non-blocking write. The
	// element(s) past the returned count were not accepted; retry after the
	// consumer drains.
	ErrBackpressure = errors.New("stream: fifo full")
	// ErrClosed reports a write to a closed FIFO, or a read from a FIFO
	// that is closed and fully drained.
	ErrClosed = errors.New("stream: fifo closed")
)

// FIFO is a bounded ring-buffer queue of T. The zero value is not usable;
// construct with New.
type FIFO[T any] struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	buf      []T
	head     int // index of the oldest element
	size     int // elements currently buffered
	closed   bool

	peak int // high-water occupancy since construction/Reset
}

// New returns a FIFO holding at most capacity elements.
func New[T any](capacity int) (*FIFO[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("stream: fifo capacity %d, want > 0", capacity)
	}
	f := &FIFO[T]{buf: make([]T, capacity)}
	f.notFull.L = &f.mu
	f.notEmpty.L = &f.mu
	return f, nil
}

// Cap returns the fixed capacity.
func (f *FIFO[T]) Cap() int { return len(f.buf) }

// Len returns the current occupancy.
func (f *FIFO[T]) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Peak returns the high-water occupancy observed since construction or the
// last Reset — the realized window of this pipeline stage.
func (f *FIFO[T]) Peak() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.peak
}

// Closed reports whether Close has been called.
func (f *FIFO[T]) Closed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// Close stops intake. Buffered elements remain readable (drain-on-close);
// once empty, reads return ErrClosed. Blocked producers and consumers wake
// immediately. Idempotent.
func (f *FIFO[T]) Close() {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		f.notFull.Broadcast()
		f.notEmpty.Broadcast()
	}
	f.mu.Unlock()
}

// Reset clears the ring and reopens a closed FIFO so pooled pipelines can
// reuse one allocation across streams. Elements still buffered are
// discarded (zeroed, so no references leak). Must not race with concurrent
// producers or consumers — Reset is for the quiescent point between
// streams, not a live queue.
func (f *FIFO[T]) Reset() {
	f.mu.Lock()
	clear(f.buf)
	f.head, f.size, f.peak = 0, 0, 0
	f.closed = false
	f.mu.Unlock()
}

// note records an occupancy change under f.mu: high-water mark plus the
// package occupancy metrics.
func (f *FIFO[T]) note() {
	if f.size > f.peak {
		f.peak = f.size
	}
	mtr.depth.SetMax(int64(f.size))
	mtr.occupancy.Observe(int64(f.size))
}

// Push appends v, blocking while the ring is full. It returns ErrClosed if
// the FIFO is (or becomes, while blocked) closed.
func (f *FIFO[T]) Push(v T) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.size == len(f.buf) && !f.closed {
		mtr.stalls.Inc()
		f.notFull.Wait()
	}
	if f.closed {
		return ErrClosed
	}
	f.buf[(f.head+f.size)%len(f.buf)] = v
	f.size++
	f.note()
	f.notEmpty.Signal()
	return nil
}

// TryPush appends v without blocking: ErrBackpressure when full, ErrClosed
// when closed.
func (f *FIFO[T]) TryPush(v T) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if f.size == len(f.buf) {
		mtr.backpressure.Inc()
		return ErrBackpressure
	}
	f.buf[(f.head+f.size)%len(f.buf)] = v
	f.size++
	f.note()
	f.notEmpty.Signal()
	return nil
}

// Pop removes and returns the oldest element, blocking while the ring is
// empty. A closed FIFO drains normally; once empty it returns ErrClosed.
func (f *FIFO[T]) Pop() (T, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.size == 0 && !f.closed {
		mtr.stalls.Inc()
		f.notEmpty.Wait()
	}
	var zero T
	if f.size == 0 {
		return zero, ErrClosed
	}
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head = (f.head + 1) % len(f.buf)
	f.size--
	f.notFull.Signal()
	return v, nil
}

// TryPop removes and returns the oldest element without blocking. ok is
// false when nothing was read; the error is then nil for a merely empty
// FIFO and ErrClosed for a closed, fully drained one.
func (f *FIFO[T]) TryPop() (v T, ok bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.size == 0 {
		if f.closed {
			return v, false, ErrClosed
		}
		return v, false, nil
	}
	var zero T
	v = f.buf[f.head]
	f.buf[f.head] = zero
	f.head = (f.head + 1) % len(f.buf)
	f.size--
	f.notFull.Signal()
	return v, true, nil
}

// Write copies all of p into the ring, blocking while full. It returns the
// number of elements accepted and ErrClosed if the FIFO closes before all
// of p is in (accepted elements stay readable).
func (f *FIFO[T]) Write(p []T) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for n < len(p) {
		for f.size == len(f.buf) && !f.closed {
			mtr.stalls.Inc()
			f.notFull.Wait()
		}
		if f.closed {
			return n, ErrClosed
		}
		n += f.copyIn(p[n:])
		f.note()
		f.notEmpty.Signal()
	}
	return n, nil
}

// TryWrite copies as much of p as fits without blocking. When nothing fits
// (and p is non-empty) it returns 0, ErrBackpressure; a partial fit
// returns the accepted count and ErrBackpressure for the remainder.
func (f *FIFO[T]) TryWrite(p []T) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	n := f.copyIn(p)
	if n > 0 {
		f.note()
		f.notEmpty.Signal()
	}
	if n < len(p) {
		mtr.backpressure.Inc()
		return n, ErrBackpressure
	}
	return n, nil
}

// Read fills p with up to len(p) elements, blocking until at least one is
// available. On a closed, drained FIFO it returns 0, ErrClosed.
func (f *FIFO[T]) Read(p []T) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.size == 0 && !f.closed {
		mtr.stalls.Inc()
		f.notEmpty.Wait()
	}
	if f.size == 0 {
		return 0, ErrClosed
	}
	n := f.copyOut(p)
	f.notFull.Signal()
	return n, nil
}

// TryRead fills p with whatever is buffered, without blocking: 0, nil on a
// merely empty FIFO, 0, ErrClosed on a closed drained one.
func (f *FIFO[T]) TryRead(p []T) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.size == 0 {
		if f.closed {
			return 0, ErrClosed
		}
		return 0, nil
	}
	n := f.copyOut(p)
	if n > 0 {
		f.notFull.Signal()
	}
	return n, nil
}

// copyIn appends min(len(p), free) elements under f.mu, in at most two
// ring segments, and returns the count.
func (f *FIFO[T]) copyIn(p []T) int {
	free := len(f.buf) - f.size
	if free == 0 || len(p) == 0 {
		return 0
	}
	n := len(p)
	if n > free {
		n = free
	}
	tail := (f.head + f.size) % len(f.buf)
	first := copy(f.buf[tail:], p[:n])
	if first < n {
		copy(f.buf, p[first:n])
	}
	f.size += n
	return n
}

// copyOut removes min(len(p), size) elements under f.mu, in at most two
// ring segments, zeroing vacated slots, and returns the count.
func (f *FIFO[T]) copyOut(p []T) int {
	n := len(p)
	if n > f.size {
		n = f.size
	}
	if n == 0 {
		return 0
	}
	first := copy(p[:n], f.buf[f.head:])
	clear(f.buf[f.head : f.head+first])
	if first < n {
		copy(p[first:n], f.buf[:n-first])
		clear(f.buf[:n-first])
	}
	f.head = (f.head + n) % len(f.buf)
	f.size -= n
	return n
}

package stream

import (
	"testing"

	"affectedge/internal/obs"
)

// benchChurn is one steady-state producer/consumer round: write a chunk,
// read it back. Single-goroutine, so it measures pure FIFO overhead
// (ring copies plus the metric branch), not scheduler latency.
func benchChurn(b *testing.B, f *FIFO[byte], chunk, sink []byte) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.TryWrite(chunk); err != nil {
			b.Fatal(err)
		}
		if _, err := f.TryRead(sink); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(chunk)))
}

// BenchmarkFIFOChurn measures the unwired (nop-metrics) fast path.
func BenchmarkFIFOChurn(b *testing.B) {
	WireMetrics(nil)
	f, _ := New[byte](4096)
	chunk := make([]byte, 512)
	benchChurn(b, f, chunk, make([]byte, len(chunk)))
}

// BenchmarkFIFOChurnWired is the same traffic with live instruments; the
// delta against BenchmarkFIFOChurn is the observability overhead, which
// must stay in obs's single-digit-nanosecond-per-op regime.
func BenchmarkFIFOChurnWired(b *testing.B) {
	reg := obs.NewRegistry()
	WireMetrics(reg.Scope("stream"))
	defer WireMetrics(nil)
	f, _ := New[byte](4096)
	chunk := make([]byte, 512)
	benchChurn(b, f, chunk, make([]byte, len(chunk)))
}

// BenchmarkFIFOPushPop measures the single-element hot path (unwired).
func BenchmarkFIFOPushPop(b *testing.B) {
	WireMetrics(nil)
	f, _ := New[int](64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.TryPush(i); err != nil {
			b.Fatal(err)
		}
		if _, _, err := f.TryPop(); err != nil {
			b.Fatal(err)
		}
	}
}

package stream

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drops back to at most
// base (GC and scheduler bookkeeping make an exact match flaky).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d running, want <= %d", runtime.NumGoroutine(), base)
}

// TestCloseWakesBlockedProducer parks a producer on a full ring and checks
// Close releases it with ErrClosed while the buffered elements survive.
func TestCloseWakesBlockedProducer(t *testing.T) {
	base := runtime.NumGoroutine()
	f, _ := New[int](1)
	if err := f.Push(1); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 2)
	go func() { errc <- f.Push(2) }()
	go func() {
		_, err := f.Write([]int{3, 4, 5})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let both block on the full ring
	f.Close()
	for i := 0; i < 2; i++ {
		if err := <-errc; !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked producer %d woke with %v, want ErrClosed", i, err)
		}
	}
	if v, err := f.Pop(); err != nil || v != 1 {
		t.Fatalf("drain after close = (%d, %v)", v, err)
	}
	waitGoroutines(t, base)
}

// TestCloseWakesBlockedConsumer parks consumers on an empty ring and
// checks Close releases them with ErrClosed.
func TestCloseWakesBlockedConsumer(t *testing.T) {
	base := runtime.NumGoroutine()
	f, _ := New[int](4)
	errc := make(chan error, 2)
	go func() {
		_, err := f.Pop()
		errc <- err
	}()
	go func() {
		_, err := f.Read(make([]int, 2))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	f.Close()
	for i := 0; i < 2; i++ {
		if err := <-errc; !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked consumer %d woke with %v, want ErrClosed", i, err)
		}
	}
	waitGoroutines(t, base)
}

// TestStressPipeline runs the SPSC shape the ingest pipelines use — one
// blocking producer, one blocking consumer — under load, verifying the
// byte sequence arrives intact and in order, and that a graceful close
// delivers every accepted byte (drain-on-close).
func TestStressPipeline(t *testing.T) {
	base := runtime.NumGoroutine()
	const total = 1 << 16
	f, _ := New[byte](64)
	var wg sync.WaitGroup
	wg.Add(2)
	var got []byte
	go func() { // producer: mixed single and slice writes
		defer wg.Done()
		defer f.Close()
		next := 0
		var chunk [13]byte
		for next < total {
			n := len(chunk)
			if total-next < n {
				n = total - next
			}
			for i := 0; i < n; i++ {
				chunk[i] = byte((next + i) * 7)
			}
			if next%3 == 0 {
				if err := f.Push(chunk[0]); err != nil {
					t.Errorf("push: %v", err)
					return
				}
				next++
				continue
			}
			w, err := f.Write(chunk[:n])
			if err != nil {
				t.Errorf("write: %v", err)
				return
			}
			next += w
		}
	}()
	go func() { // consumer: mixed single and slice reads
		defer wg.Done()
		buf := make([]byte, 17)
		for {
			if len(got)%5 == 0 {
				v, err := f.Pop()
				if err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Errorf("pop: %v", err)
					return
				}
				got = append(got, v)
				continue
			}
			n, err := f.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				if errors.Is(err, ErrClosed) {
					return
				}
				t.Errorf("read: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if len(got) != total {
		t.Fatalf("received %d bytes, want %d", len(got), total)
	}
	for i, b := range got {
		if b != byte(i*7) {
			t.Fatalf("byte %d = %d, want %d (reordering)", i, b, byte(i*7))
		}
	}
	if f.Peak() > f.Cap() {
		t.Fatalf("peak %d exceeds capacity %d", f.Peak(), f.Cap())
	}
	waitGoroutines(t, base)
}

// TestStressCancelChurn spins producer/consumer pairs that get cancelled
// by Close at random points, ensuring no goroutine survives its FIFO.
func TestStressCancelChurn(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 50; round++ {
		f, _ := New[int](8)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				if err := f.Push(i); err != nil {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				if _, err := f.Pop(); err != nil {
					return
				}
			}
		}()
		if round%2 == 0 {
			time.Sleep(time.Millisecond)
		}
		f.Close()
		wg.Wait()
	}
	waitGoroutines(t, base)
}

// TestStressTryTraffic mixes non-blocking producers with a blocking
// consumer: ErrBackpressure must be the only loss mechanism, i.e. accepted
// element counts match received counts exactly.
func TestStressTryTraffic(t *testing.T) {
	base := runtime.NumGoroutine()
	f, _ := New[int](32)
	var wg sync.WaitGroup
	wg.Add(1)
	accepted := 0
	go func() {
		defer wg.Done()
		defer f.Close()
		buf := make([]int, 5)
		for i := 0; i < 20000; i++ {
			if i%2 == 0 {
				if err := f.TryPush(i); err == nil {
					accepted++
				} else if !errors.Is(err, ErrBackpressure) {
					t.Errorf("TryPush: %v", err)
					return
				}
				continue
			}
			for j := range buf {
				buf[j] = i
			}
			n, err := f.TryWrite(buf)
			accepted += n
			if err != nil && !errors.Is(err, ErrBackpressure) {
				t.Errorf("TryWrite: %v", err)
				return
			}
		}
	}()
	received := 0
	buf := make([]int, 7)
	for {
		n, err := f.Read(buf)
		received += n
		if err != nil {
			if errors.Is(err, ErrClosed) {
				break
			}
			t.Fatal(err)
		}
	}
	wg.Wait()
	if received != accepted {
		t.Fatalf("received %d, accepted %d: elements lost or duplicated", received, accepted)
	}
	waitGoroutines(t, base)
}

package stream

import "affectedge/internal/obs"

// metrics holds the package's zero-allocation instrument handles. All
// handles are nil until WireMetrics runs; every obs method is a no-op on a
// nil receiver, so unwired FIFOs pay a single predictable branch per
// operation (the same contract every other subsystem follows).
//
// The family is package-wide, not per-FIFO: fleets create one FIFO per
// pipeline stage per session, and per-instance instruments would both
// allocate on the ingest path and explode the registry. Per-stage peaks
// remain observable through FIFO.Peak.
type metrics struct {
	depth        *obs.Gauge     // queue_depth_high: high-water occupancy across all FIFOs
	stalls       *obs.Counter   // blocking waits entered (producer full + consumer empty)
	backpressure *obs.Counter   // non-blocking writes refused or truncated by a full ring
	occupancy    *obs.Histogram // ring occupancy observed at each accepted write
}

var mtr metrics

// WireMetrics attaches the stream package to an observability scope. Pass
// a nil scope to unwire. Not synchronized with running pipelines — wire
// before starting work.
func WireMetrics(s *obs.Scope) {
	mtr.depth = s.Gauge("queue_depth_high")
	mtr.stalls = s.Counter("stalls")
	mtr.backpressure = s.Counter("backpressure")
	mtr.occupancy = s.Histogram("occupancy", obs.ExponentialBuckets(1, 2, 12))
}

package stream

import (
	"errors"
	"testing"

	"affectedge/internal/obs"
)

func TestNewValidatesCapacity(t *testing.T) {
	for _, c := range []int{0, -1, -100} {
		if _, err := New[byte](c); err == nil {
			t.Fatalf("capacity %d accepted", c)
		}
	}
	f, err := New[byte](1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cap() != 1 || f.Len() != 0 {
		t.Fatalf("cap/len = %d/%d, want 1/0", f.Cap(), f.Len())
	}
}

func TestPushPopOrder(t *testing.T) {
	f, _ := New[int](4)
	for i := 0; i < 4; i++ {
		if err := f.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.TryPush(99); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("TryPush on full = %v, want ErrBackpressure", err)
	}
	for i := 0; i < 4; i++ {
		v, err := f.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("pop %d, want %d", v, i)
		}
	}
	if v, ok, err := f.TryPop(); ok || err != nil {
		t.Fatalf("TryPop on empty = (%v, %v, %v)", v, ok, err)
	}
}

// TestWrapAround churns a small ring far past its capacity so every slice
// operation exercises both the contiguous and the two-segment copy paths.
func TestWrapAround(t *testing.T) {
	f, _ := New[byte](7)
	var in, out []byte
	next := byte(1)
	buf := make([]byte, 5)
	for round := 0; round < 200; round++ {
		w := round%5 + 1
		chunk := make([]byte, w)
		for i := range chunk {
			chunk[i] = next
			next++
		}
		n, err := f.TryWrite(chunk)
		in = append(in, chunk[:n]...)
		if err != nil && !errors.Is(err, ErrBackpressure) {
			t.Fatal(err)
		}
		r, err := f.TryRead(buf[:round%4+1])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, buf[:r]...)
	}
	for {
		r, err := f.TryRead(buf)
		if err != nil {
			t.Fatal(err)
		}
		if r == 0 {
			break
		}
		out = append(out, buf[:r]...)
	}
	if string(in) != string(out) {
		t.Fatalf("FIFO reordered or lost data: wrote %d bytes, read %d", len(in), len(out))
	}
}

func TestDrainOnClose(t *testing.T) {
	f, _ := New[int](8)
	for i := 0; i < 5; i++ {
		if err := f.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if err := f.Push(9); !errors.Is(err, ErrClosed) {
		t.Fatalf("Push after close = %v, want ErrClosed", err)
	}
	if err := f.TryPush(9); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryPush after close = %v, want ErrClosed", err)
	}
	if _, err := f.TryWrite([]int{9}); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryWrite after close = %v, want ErrClosed", err)
	}
	for i := 0; i < 5; i++ {
		v, err := f.Pop()
		if err != nil {
			t.Fatalf("drain element %d: %v", i, err)
		}
		if v != i {
			t.Fatalf("drained %d, want %d", v, i)
		}
	}
	if _, err := f.Pop(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Pop on drained closed FIFO = %v, want ErrClosed", err)
	}
	if _, ok, err := f.TryPop(); ok || !errors.Is(err, ErrClosed) {
		t.Fatalf("TryPop on drained closed FIFO = (%v, %v)", ok, err)
	}
	if n, err := f.Read(make([]int, 2)); n != 0 || !errors.Is(err, ErrClosed) {
		t.Fatalf("Read on drained closed FIFO = (%d, %v)", n, err)
	}
	if n, err := f.TryRead(make([]int, 2)); n != 0 || !errors.Is(err, ErrClosed) {
		t.Fatalf("TryRead on drained closed FIFO = (%d, %v)", n, err)
	}
	f.Close() // idempotent
}

func TestSliceOps(t *testing.T) {
	f, _ := New[float64](6)
	n, err := f.Write([]float64{1, 2, 3, 4})
	if n != 4 || err != nil {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	n, err = f.TryWrite([]float64{5, 6, 7})
	if n != 2 || !errors.Is(err, ErrBackpressure) {
		t.Fatalf("partial TryWrite = (%d, %v), want (2, ErrBackpressure)", n, err)
	}
	got := make([]float64, 10)
	n, err = f.Read(got)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("Read %d elements, want 6", n)
	}
	for i, want := range []float64{1, 2, 3, 4, 5, 6} {
		if got[i] != want {
			t.Fatalf("element %d = %g, want %g", i, got[i], want)
		}
	}
	if n, err := f.TryRead(got); n != 0 || err != nil {
		t.Fatalf("TryRead on empty open FIFO = (%d, %v)", n, err)
	}
	if n, err := f.Read(nil); n != 0 || err != nil {
		t.Fatalf("zero-length Read = (%d, %v)", n, err)
	}
}

func TestPeakAndReset(t *testing.T) {
	f, _ := New[int](8)
	if _, err := f.Write([]int{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	buf := make([]int, 3)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	if f.Peak() != 5 {
		t.Fatalf("peak %d, want 5", f.Peak())
	}
	f.Close()
	if !f.Closed() {
		t.Fatal("Closed() false after Close")
	}
	f.Reset()
	if f.Closed() || f.Len() != 0 || f.Peak() != 0 {
		t.Fatalf("after Reset: closed=%v len=%d peak=%d", f.Closed(), f.Len(), f.Peak())
	}
	if err := f.Push(42); err != nil {
		t.Fatalf("Push after Reset: %v", err)
	}
	v, err := f.Pop()
	if err != nil || v != 42 {
		t.Fatalf("Pop after Reset = (%d, %v)", v, err)
	}
}

// TestMetrics wires the package family and checks that FIFO traffic lands
// in every instrument, then unwires and checks operations still work.
func TestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	WireMetrics(reg.Scope("stream"))
	defer WireMetrics(nil)

	f, _ := New[byte](4)
	if _, err := f.Write([]byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := f.TryPush(5); !errors.Is(err, ErrBackpressure) {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if v := snap.Gauge("stream.queue_depth_high"); v != 4 {
		t.Fatalf("queue_depth_high = %d, want 4", v)
	}
	if v := snap.Counter("stream.backpressure"); v != 1 {
		t.Fatalf("backpressure = %d, want 1", v)
	}
	if h, ok := snap.Histogram("stream.occupancy"); !ok || h.Count == 0 {
		t.Fatalf("occupancy histogram missing or empty (%+v)", h)
	}

	WireMetrics(nil)
	if err := f.Push(9); err != nil {
		t.Fatalf("unwired Push: %v", err)
	}
	if _, err := f.Pop(); err != nil {
		t.Fatalf("unwired Pop: %v", err)
	}
}

package core

import (
	"fmt"
	"time"

	"affectedge/internal/android"
	"affectedge/internal/emotion"
	"affectedge/internal/monkey"
	"affectedge/internal/personality"
)

// AppStudyConfig parameterizes the §5.2 app-management experiment
// (Figs 9 and 10).
type AppStudyConfig struct {
	Device android.DeviceConfig
	Monkey monkey.Config
	// LearnedTable, when set, starts the emotional manager from an empty
	// affect table learned online instead of the oracle subject table.
	LearnedTable bool
}

// DefaultAppStudyConfig returns the paper's setup: 4 GB / limit-20 device
// and the 12-min-excited + 8-min-calm compressed session.
func DefaultAppStudyConfig() AppStudyConfig {
	mc := monkey.DefaultConfig()
	mc.AppDist = MoodAppDistributions()
	return AppStudyConfig{
		Device: android.DefaultDeviceConfig(),
		Monkey: mc,
	}
}

// MoodAppDistributions derives per-mood app-launch distributions from the
// proxy subjects (subject 3 = excited, subject 4 = calm) spread over the
// 44-app catalog.
func MoodAppDistributions() map[emotion.Mood]map[string]float64 {
	out := map[emotion.Mood]map[string]float64{}
	for _, mood := range []emotion.Mood{emotion.Excited, emotion.CalmMood} {
		subj, err := personality.SubjectByMood(mood)
		if err != nil {
			// Both moods have subjects by construction.
			panic("core: " + err.Error())
		}
		out[mood] = android.SpreadOverCatalog(subj.Usage)
	}
	return out
}

// AppStudyResult carries both runs plus the Fig 10 deltas.
type AppStudyResult struct {
	Comparison *android.Comparison
	Workload   *monkey.Workload
	Horizon    time.Duration
}

// RunAppStudy generates the monkey workload and replays it under the
// emotional manager and the FIFO baseline.
func RunAppStudy(cfg AppStudyConfig) (*AppStudyResult, error) {
	if cfg.Monkey.AppDist == nil {
		cfg.Monkey.AppDist = MoodAppDistributions()
	}
	wl, err := monkey.Generate(cfg.Monkey)
	if err != nil {
		return nil, err
	}
	events := make([]android.WorkloadEvent, len(wl.Events))
	for i, e := range wl.Events {
		events[i] = android.WorkloadEvent{At: e.At, App: e.App, Mood: e.Mood}
	}
	var table *android.AffectTable
	if cfg.LearnedTable {
		table = android.LearnedAffectTable()
		// Online learning: warm the table from an independent prior
		// session of the same subjects (a previous day's usage).
		warmCfg := cfg.Monkey
		warmCfg.Seed = cfg.Monkey.Seed + 7919
		warm, err := monkey.Generate(warmCfg)
		if err != nil {
			return nil, err
		}
		for _, e := range warm.Events {
			table.Learn(e.Mood, e.App)
		}
	} else {
		table, err = android.AffectTableFromSubjects()
		if err != nil {
			return nil, err
		}
	}
	cmp, err := android.Compare(cfg.Device, table, events)
	if err != nil {
		return nil, err
	}
	return &AppStudyResult{Comparison: cmp, Workload: wl, Horizon: wl.Horizon}, nil
}

// MeanAppStudy averages the Fig 10 savings over several seeds for a
// stable headline number.
func MeanAppStudy(cfg AppStudyConfig, seeds []int64) (memSavingPct, timeSavingPct float64, err error) {
	if len(seeds) == 0 {
		return 0, 0, fmt.Errorf("core: no seeds")
	}
	for _, s := range seeds {
		c := cfg
		c.Monkey.Seed = s
		res, err := RunAppStudy(c)
		if err != nil {
			return 0, 0, err
		}
		memSavingPct += res.Comparison.MemorySavingPct
		timeSavingPct += res.Comparison.TimeSavingPct
	}
	n := float64(len(seeds))
	return memSavingPct / n, timeSavingPct / n, nil
}

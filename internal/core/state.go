package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"affectedge/internal/emotion"
)

// Manager snapshot/restore: the full hidden control-loop state — committed
// attention/mood/mode, both hysteresis accumulators, the observation
// counters, and the transition log — behind a versioned gob envelope. A
// restored manager replayed over an observation suffix is bit-identical to
// the original replayed over the whole sequence (pinned by the property
// suite in state_test.go), which is what lets fleet sessions disconnect,
// migrate across processes, and reconnect without perturbing a
// deterministic run.

// managerStateVersion is the wire version of the manager envelope. Bump it
// whenever the serialized field set changes meaning; decoding any other
// version fails with *VersionError rather than misreading old state.
const managerStateVersion = 1

// VersionError reports a snapshot envelope whose wire version does not
// match what this build reads.
type VersionError struct {
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("core: manager snapshot version %d, want %d", e.Got, e.Want)
}

// ManagerState is the exported hidden state of a Manager: everything
// Observe reads or writes. Plain data, so it gob-encodes without custom
// hooks and embeds directly in higher-level envelopes (the fleet session
// snapshot reuses it).
type ManagerState struct {
	Attention emotion.Attention
	Mood      emotion.Mood

	PendingAttention emotion.Attention
	PendingCount     int
	PendingMood      emotion.Mood
	PendingMoodCount int

	Observed  int
	Discarded int

	AttnSwitches int
	MoodSwitches int
	ModeSwitches int

	// Transitions is the state-change history; empty when the source
	// manager runs with DisableHistory.
	Transitions []Transition
}

// ExportState copies out the manager's hidden state. The transition slice
// is cloned, so the snapshot is immune to later Observe calls.
func (m *Manager) ExportState() ManagerState {
	st := ManagerState{
		Attention:        m.attention,
		Mood:             m.mood,
		PendingAttention: m.pendingAttention,
		PendingCount:     m.pendingCount,
		PendingMood:      m.pendingMood,
		PendingMoodCount: m.pendingMoodCount,
		Observed:         m.observed,
		Discarded:        m.discarded,
		AttnSwitches:     m.attnSwitches,
		MoodSwitches:     m.moodSwitches,
		ModeSwitches:     m.modeSwitches,
	}
	if len(m.transitions) > 0 {
		st.Transitions = append([]Transition(nil), m.transitions...)
	}
	return st
}

// ImportState replaces the manager's hidden state with st, after
// validating every enum-typed field so a corrupted snapshot cannot smuggle
// in out-of-range states. The manager's configuration (policy, hysteresis,
// confidence floor) is not part of the state and keeps its current value.
// On error the manager is untouched.
func (m *Manager) ImportState(st ManagerState) error {
	if !st.Attention.Valid() {
		return fmt.Errorf("core: snapshot attention %d out of range", int(st.Attention))
	}
	if !st.PendingAttention.Valid() {
		return fmt.Errorf("core: snapshot pending attention %d out of range", int(st.PendingAttention))
	}
	if !st.Mood.Valid() {
		return fmt.Errorf("core: snapshot mood %d out of range", int(st.Mood))
	}
	if !st.PendingMood.Valid() {
		return fmt.Errorf("core: snapshot pending mood %d out of range", int(st.PendingMood))
	}
	if st.PendingCount < 0 || st.PendingMoodCount < 0 ||
		st.Observed < 0 || st.Discarded < 0 ||
		st.AttnSwitches < 0 || st.MoodSwitches < 0 || st.ModeSwitches < 0 {
		return fmt.Errorf("core: snapshot has negative counters")
	}
	if st.Discarded > st.Observed {
		return fmt.Errorf("core: snapshot discarded %d exceeds observed %d", st.Discarded, st.Observed)
	}
	m.attention = st.Attention
	m.mood = st.Mood
	m.mode = m.cfg.VideoPolicy[st.Attention]
	m.pendingAttention = st.PendingAttention
	m.pendingCount = st.PendingCount
	m.pendingMood = st.PendingMood
	m.pendingMoodCount = st.PendingMoodCount
	m.observed = st.Observed
	m.discarded = st.Discarded
	m.attnSwitches = st.AttnSwitches
	m.moodSwitches = st.MoodSwitches
	m.modeSwitches = st.ModeSwitches
	m.transitions = nil
	if len(st.Transitions) > 0 {
		m.transitions = append([]Transition(nil), st.Transitions...)
	}
	return nil
}

// managerEnvelope is the gob wire format: the version, the configuration
// scalars the state is only meaningful under, and the state itself.
type managerEnvelope struct {
	Version       int
	Hysteresis    int
	MinConfidence float64
	State         ManagerState
}

// Snapshot writes the manager's hidden state to w as a versioned gob
// envelope. The video policy is not serialized (it is configuration, not
// state); Restore must be called on a manager built with the same config.
func (m *Manager) Snapshot(w io.Writer) error {
	env := managerEnvelope{
		Version:       managerStateVersion,
		Hysteresis:    m.cfg.Hysteresis,
		MinConfidence: m.cfg.MinConfidence,
		State:         m.ExportState(),
	}
	return gob.NewEncoder(w).Encode(&env)
}

// Restore replaces the manager's hidden state with a snapshot previously
// written by Snapshot. It fails — leaving the manager untouched — on a
// truncated or corrupt stream, a wrong envelope version (*VersionError),
// a configuration mismatch, or out-of-range state values.
func (m *Manager) Restore(r io.Reader) error {
	var env managerEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("core: manager snapshot decode: %w", err)
	}
	if env.Version != managerStateVersion {
		return &VersionError{Got: env.Version, Want: managerStateVersion}
	}
	if env.Hysteresis != m.cfg.Hysteresis || env.MinConfidence != m.cfg.MinConfidence {
		return fmt.Errorf("core: snapshot config (hysteresis %d, min confidence %g) does not match manager (%d, %g)",
			env.Hysteresis, env.MinConfidence, m.cfg.Hysteresis, m.cfg.MinConfidence)
	}
	return m.ImportState(env.State)
}

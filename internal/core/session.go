package core

import (
	"fmt"
	"time"

	"affectedge/internal/affectdata"
	"affectedge/internal/android"
	"affectedge/internal/biosig"
	"affectedge/internal/emotion"
	"affectedge/internal/h264"
	"affectedge/internal/monkey"
	"affectedge/internal/sc"
	"affectedge/internal/sim"
	"affectedge/internal/video"
)

// SessionConfig drives the integrated end-to-end simulation (Fig 2/Fig 4):
// a wearable streams skin conductance; every ObservationEvery the on-device
// classifier emits an affect observation; the Manager applies hysteresis
// and commands both the video decoder mode and the app manager's mood;
// meanwhile the user launches apps and watches video on the same virtual
// timeline.
type SessionConfig struct {
	Duration         time.Duration
	ObservationEvery time.Duration
	SCSeed           int64
	WorkloadSeed     int64
	Manager          ManagerConfig
	Device           android.DeviceConfig
	// UsePPG adds the wearable's heart-rate channel: a PPG stream is
	// synthesized from the same arousal timeline and fused with the SC
	// estimate (Fig 2's multimodal sensing).
	UsePPG bool
}

// DefaultSessionConfig returns a 40-minute session observed every 30 s.
func DefaultSessionConfig() SessionConfig {
	return SessionConfig{
		Duration:         40 * time.Minute,
		ObservationEvery: 30 * time.Second,
		SCSeed:           1,
		WorkloadSeed:     1,
		Manager:          DefaultManagerConfig(),
		Device:           android.DefaultDeviceConfig(),
		UsePPG:           true,
	}
}

// SessionResult aggregates the integrated run.
type SessionResult struct {
	// Transitions the manager commanded.
	Transitions []Transition
	// Video energy under affect-driven modes vs always-standard.
	VideoEnergy, VideoBaselineEnergy float64
	VideoSavingPct                   float64
	// App metrics: the manager-driven emotional device vs a FIFO baseline
	// replaying the same launches.
	AppEmotional, AppBaseline android.Metrics
	AppMemorySavingPct        float64
	// Classifier agreement with the SC ground truth.
	AttentionAccuracy float64
	Observations      int
}

// attentionArousal maps a classified attention state to a representative
// circumplex point for the Manager (the classifier's continuous output).
var attentionArousal = map[emotion.Attention]float64{
	emotion.Distracted:   -0.6,
	emotion.Relaxed:      0.0,
	emotion.Concentrated: 0.35,
	emotion.Tense:        0.8,
}

// RunSession executes the full loop on one discrete-event timeline.
func RunSession(cfg SessionConfig) (*SessionResult, error) {
	if cfg.Duration <= 0 || cfg.ObservationEvery <= 0 {
		return nil, fmt.Errorf("core: session durations must be positive")
	}
	minutes := cfg.Duration.Minutes()

	// Substrate: SC recording with the uulmMAC label timeline scaled to
	// the session duration.
	schedule := affectdata.UulmMACSchedule()
	scale := minutes / schedule[len(schedule)-1].EndMin
	for i := range schedule {
		schedule[i].StartMin *= scale
		schedule[i].EndMin *= scale
	}
	tr, err := affectdata.GenerateSC(schedule, 4, cfg.SCSeed)
	if err != nil {
		return nil, err
	}
	windows, err := sc.Classify(tr.Samples, tr.SampleRate, sc.DefaultConfig())
	if err != nil {
		return nil, err
	}
	stateAt := func(min float64) emotion.Attention {
		for _, w := range windows {
			if min >= w.StartMin && min < w.EndMin {
				return w.State
			}
		}
		return windows[len(windows)-1].State
	}

	// Optional PPG channel: a heart-rate stream following the same
	// ground-truth arousal timeline, analyzed per observation window.
	var ppgTrace []float64
	ppgCfg := biosig.DefaultPPGConfig()
	ppgCfg.Seed = cfg.SCSeed + 101
	if cfg.UsePPG {
		arousal := make([]float64, int(minutes*60))
		for i := range arousal {
			arousal[i] = attentionArousal[tr.StateAt(float64(i)/60/scale)]
		}
		ppgTrace, err = biosig.GeneratePPG(arousal, 1, ppgCfg)
		if err != nil {
			return nil, err
		}
	}

	// Per-mode video energy rates from the reference clip.
	src, err := h264.GenerateVideo(h264.CalibrationVideoConfig(48))
	if err != nil {
		return nil, err
	}
	rates, err := video.MeasureModeRates(src, h264.CalibrationEncoderConfig(), h264.DefaultEnergyModel(), 24)
	if err != nil {
		return nil, err
	}

	// App workload over the same session (phases scaled too).
	mc := monkey.DefaultConfig()
	mc.AppDist = MoodAppDistributions()
	mc.Seed = cfg.WorkloadSeed
	total := cfg.Duration
	mc.Phases = []monkey.Phase{
		{Mood: emotion.Excited, Duration: total * 3 / 5},
		{Mood: emotion.CalmMood, Duration: total - total*3/5},
	}
	wl, err := monkey.Generate(mc)
	if err != nil {
		return nil, err
	}

	table, err := android.AffectTableFromSubjects()
	if err != nil {
		return nil, err
	}
	emoPolicy, err := android.NewEmotionalPolicy(table)
	if err != nil {
		return nil, err
	}
	emoDev, err := android.NewDevice(cfg.Device, emoPolicy)
	if err != nil {
		return nil, err
	}
	baseDev, err := android.NewDevice(cfg.Device, android.FIFOPolicy{})
	if err != nil {
		return nil, err
	}

	mgr, err := NewManager(cfg.Manager)
	if err != nil {
		return nil, err
	}

	res := &SessionResult{}
	s := sim.New()
	var simErr error
	fail := func(err error) {
		if simErr == nil {
			simErr = err
		}
	}

	// Video energy integration state.
	lastModeChange := time.Duration(0)
	curMode := mgr.DecoderMode()
	accrue := func(now time.Duration) {
		span := (now - lastModeChange).Minutes()
		res.VideoEnergy += rates.EnergyPerMin[curMode] * span
		res.VideoBaselineEnergy += rates.EnergyPerMin[h264.ModeStandard] * span
		lastModeChange = now
	}

	// Observation events: classify the current SC window, feed the
	// manager, apply its outputs to the hardware.
	var attHits int
	var schedObs func(at time.Duration)
	schedObs = func(at time.Duration) {
		if at > cfg.Duration {
			return
		}
		if err := s.At(at, func() {
			min := s.Now().Minutes()
			state := stateAt(min)
			res.Observations++
			if state == tr.StateAt(min/scale) {
				attHits++
			}
			point := emotion.Point{Arousal: attentionArousal[state]}
			if cfg.UsePPG && len(ppgTrace) > 0 {
				// Fuse the SC estimate with the HR channel over the last
				// observation window.
				lo := int((s.Now() - cfg.ObservationEvery).Seconds() * ppgCfg.SampleRate)
				hi := int(s.Now().Seconds() * ppgCfg.SampleRate)
				if lo < 0 {
					lo = 0
				}
				if hi > len(ppgTrace) {
					hi = len(ppgTrace)
				}
				if hi-lo > int(5*ppgCfg.SampleRate) {
					if st, err := biosig.EstimateHR(ppgTrace[lo:hi], ppgCfg.SampleRate); err == nil && st.Beats >= 2 {
						point = biosig.FuseArousal(map[string]float64{
							"sc": point.Arousal,
							"hr": biosig.ArousalFromHR(st, ppgCfg),
						}, map[string]float64{"sc": 2, "hr": 1})
					}
				}
			}
			switched, err := mgr.Observe(Observation{
				At: s.Now(), Point: point, HasPoint: true, Confidence: 0.9,
			})
			if err != nil {
				fail(err)
				return
			}
			if switched {
				accrue(s.Now())
				curMode = mgr.DecoderMode()
				if err := emoDev.SetMood(mgr.Mood()); err != nil {
					fail(err)
				}
			}
			schedObs(at + cfg.ObservationEvery)
		}); err != nil {
			fail(err)
		}
	}
	schedObs(cfg.ObservationEvery)

	// App launch events on both devices (baseline ignores mood).
	for _, e := range wl.Events {
		e := e
		if e.At > cfg.Duration {
			break
		}
		if err := s.At(e.At, func() {
			if _, err := emoDev.Launch(s.Now(), e.App); err != nil {
				fail(err)
			}
			if _, err := baseDev.Launch(s.Now(), e.App); err != nil {
				fail(err)
			}
		}); err != nil {
			fail(err)
		}
	}

	s.Run(cfg.Duration)
	if simErr != nil {
		return nil, simErr
	}
	accrue(cfg.Duration)

	res.Transitions = mgr.Transitions()
	if res.VideoBaselineEnergy > 0 {
		res.VideoSavingPct = 100 * (1 - res.VideoEnergy/res.VideoBaselineEnergy)
	}
	res.AppEmotional = emoDev.Metrics()
	res.AppBaseline = baseDev.Metrics()
	if res.AppBaseline.BytesLoaded > 0 {
		res.AppMemorySavingPct = 100 * (1 - float64(res.AppEmotional.BytesLoaded)/float64(res.AppBaseline.BytesLoaded))
	}
	if res.Observations > 0 {
		res.AttentionAccuracy = float64(attHits) / float64(res.Observations)
	}
	return res, nil
}

package core

import (
	"fmt"

	"affectedge/internal/emotion"
	"affectedge/internal/h264"
	"affectedge/internal/video"
)

// The paper notes the emotion-to-mode table "is subjective to the user and
// hence is expected to be personalized and reprogrammed with the hardware
// capability provided". PolicyLearner implements that personalization: it
// starts from the paper's default policy and adjusts per-state modes from
// explicit user feedback (quality complaints push a state toward better
// quality; battery complaints push toward more saving).

// Feedback is one user signal about the current experience.
type Feedback int

// Feedback kinds.
const (
	// FeedbackQualityPoor: the user found the video quality lacking in
	// the current attention state.
	FeedbackQualityPoor Feedback = iota
	// FeedbackBatteryDrain: the user wants longer battery life.
	FeedbackBatteryDrain
)

// modeQualityOrder ranks modes from most power-saving (worst quality) to
// best quality.
var modeQualityOrder = []h264.DecoderMode{
	h264.ModeCombined, h264.ModeDFOff, h264.ModeDeletion, h264.ModeStandard,
}

func modeRank(m h264.DecoderMode) int {
	for i, mm := range modeQualityOrder {
		if mm == m {
			return i
		}
	}
	return -1
}

// PolicyLearner adapts a per-user mode policy from feedback events.
type PolicyLearner struct {
	policy video.ModePolicy
	// Votes accumulate per state; a state moves one rank after Threshold
	// net votes in one direction.
	votes     map[emotion.Attention]int
	Threshold int
	// Adjustments counts applied policy changes.
	Adjustments int
}

// NewPolicyLearner starts from a copy of the given policy (nil = paper
// default) with the given vote threshold (<=0 defaults to 2).
func NewPolicyLearner(base video.ModePolicy, threshold int) *PolicyLearner {
	if base == nil {
		base = video.PaperPolicy()
	}
	cp := video.ModePolicy{}
	for k, v := range base {
		cp[k] = v
	}
	if threshold <= 0 {
		threshold = 2
	}
	return &PolicyLearner{
		policy:    cp,
		votes:     map[emotion.Attention]int{},
		Threshold: threshold,
	}
}

// Policy returns the current personalized policy.
func (p *PolicyLearner) Policy() video.ModePolicy {
	cp := video.ModePolicy{}
	for k, v := range p.policy {
		cp[k] = v
	}
	return cp
}

// Observe registers feedback given while the user was in a state. It
// returns true when the policy changed.
func (p *PolicyLearner) Observe(state emotion.Attention, fb Feedback) (bool, error) {
	if !state.Valid() {
		return false, fmt.Errorf("core: invalid attention state %d", int(state))
	}
	switch fb {
	case FeedbackQualityPoor:
		p.votes[state]++
	case FeedbackBatteryDrain:
		// Battery complaints are global: every state votes down.
		for _, s := range []emotion.Attention{emotion.Distracted, emotion.Relaxed, emotion.Concentrated, emotion.Tense} {
			p.votes[s]--
		}
	default:
		return false, fmt.Errorf("core: unknown feedback %d", int(fb))
	}
	changed := false
	for s, v := range p.votes {
		cur := modeRank(p.policy[s])
		switch {
		case v >= p.Threshold && cur < len(modeQualityOrder)-1:
			p.policy[s] = modeQualityOrder[cur+1]
			p.votes[s] = 0
			p.Adjustments++
			changed = true
		case v <= -p.Threshold && cur > 0:
			p.policy[s] = modeQualityOrder[cur-1]
			p.votes[s] = 0
			p.Adjustments++
			changed = true
		case v >= p.Threshold || v <= -p.Threshold:
			// Already at the boundary; absorb the votes.
			p.votes[s] = 0
		}
	}
	return changed, nil
}

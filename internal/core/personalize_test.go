package core

import (
	"testing"

	"affectedge/internal/emotion"
	"affectedge/internal/h264"
)

func TestPolicyLearnerQualityFeedback(t *testing.T) {
	p := NewPolicyLearner(nil, 2)
	// Distracted defaults to combined (most saving). Two quality
	// complaints move it one rank toward quality (df-off).
	if p.Policy()[emotion.Distracted] != h264.ModeCombined {
		t.Fatal("unexpected default")
	}
	changed, err := p.Observe(emotion.Distracted, FeedbackQualityPoor)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("policy changed before threshold")
	}
	changed, err = p.Observe(emotion.Distracted, FeedbackQualityPoor)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("policy did not change at threshold")
	}
	if got := p.Policy()[emotion.Distracted]; got != h264.ModeDFOff {
		t.Errorf("distracted mode %v, want df-off", got)
	}
	if p.Adjustments != 1 {
		t.Errorf("adjustments %d", p.Adjustments)
	}
	// Other states untouched.
	if p.Policy()[emotion.Tense] != h264.ModeStandard {
		t.Error("unrelated state changed")
	}
}

func TestPolicyLearnerQualityCeiling(t *testing.T) {
	p := NewPolicyLearner(nil, 1)
	// Tense is already at standard (best quality): complaints absorb.
	for i := 0; i < 5; i++ {
		if _, err := p.Observe(emotion.Tense, FeedbackQualityPoor); err != nil {
			t.Fatal(err)
		}
	}
	if p.Policy()[emotion.Tense] != h264.ModeStandard {
		t.Error("tense moved beyond standard")
	}
	if p.Adjustments != 0 {
		t.Error("ceiling complaints counted as adjustments")
	}
}

func TestPolicyLearnerBatteryFeedback(t *testing.T) {
	p := NewPolicyLearner(nil, 2)
	// Two battery complaints push every non-floor state one rank toward
	// saving; tense (standard) drops to deletion.
	for i := 0; i < 2; i++ {
		if _, err := p.Observe(emotion.Relaxed, FeedbackBatteryDrain); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Policy()[emotion.Tense]; got != h264.ModeDeletion {
		t.Errorf("tense mode %v after battery complaints, want deletion", got)
	}
	// Distracted was already at the floor (combined): unchanged.
	if got := p.Policy()[emotion.Distracted]; got != h264.ModeCombined {
		t.Errorf("distracted mode %v, want combined", got)
	}
}

func TestPolicyLearnerIsolatedFromBase(t *testing.T) {
	base := map[emotion.Attention]h264.DecoderMode{
		emotion.Distracted:   h264.ModeCombined,
		emotion.Relaxed:      h264.ModeDFOff,
		emotion.Concentrated: h264.ModeDeletion,
		emotion.Tense:        h264.ModeStandard,
	}
	p := NewPolicyLearner(base, 1)
	if _, err := p.Observe(emotion.Distracted, FeedbackQualityPoor); err != nil {
		t.Fatal(err)
	}
	if base[emotion.Distracted] != h264.ModeCombined {
		t.Error("learner mutated the base policy")
	}
	// The returned policy is also a copy.
	got := p.Policy()
	got[emotion.Tense] = h264.ModeCombined
	if p.Policy()[emotion.Tense] == h264.ModeCombined {
		t.Error("Policy() exposes internal state")
	}
}

func TestPolicyLearnerValidation(t *testing.T) {
	p := NewPolicyLearner(nil, 0) // defaults threshold to 2
	if p.Threshold != 2 {
		t.Errorf("threshold %d", p.Threshold)
	}
	if _, err := p.Observe(emotion.Attention(9), FeedbackQualityPoor); err == nil {
		t.Error("invalid state accepted")
	}
	if _, err := p.Observe(emotion.Tense, Feedback(9)); err == nil {
		t.Error("invalid feedback accepted")
	}
}

// TestPersonalizedPolicyDrivesManager closes the loop: a learner-adjusted
// policy plugs into a new manager.
func TestPersonalizedPolicyDrivesManager(t *testing.T) {
	p := NewPolicyLearner(nil, 1)
	if _, err := p.Observe(emotion.Distracted, FeedbackQualityPoor); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultManagerConfig()
	cfg.VideoPolicy = p.Policy()
	cfg.Hysteresis = 1
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe(Observation{
		Point: emotion.Point{Arousal: -0.8}, HasPoint: true, Confidence: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if m.DecoderMode() != h264.ModeDFOff {
		t.Errorf("personalized distracted mode %v, want df-off", m.DecoderMode())
	}
}

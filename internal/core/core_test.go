package core

import (
	"math"
	"testing"
	"time"

	"affectedge/internal/android"
	"affectedge/internal/emotion"
	"affectedge/internal/h264"
	"affectedge/internal/monkey"
	"affectedge/internal/personality"
)

func TestManagerDefaults(t *testing.T) {
	m, err := NewManager(DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Attention() != emotion.Relaxed || m.Mood() != emotion.CalmMood {
		t.Error("initial state wrong")
	}
	if m.DecoderMode() != h264.ModeDFOff {
		t.Errorf("initial mode %v, want df-off (relaxed policy)", m.DecoderMode())
	}
}

func TestManagerHysteresis(t *testing.T) {
	m, err := NewManager(DefaultManagerConfig()) // hysteresis 2
	if err != nil {
		t.Fatal(err)
	}
	obs := func(at time.Duration, l emotion.Label) bool {
		sw, err := m.Observe(Observation{At: at, Label: l, Confidence: 1})
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}
	// One angry (tense) observation: no switch yet.
	if obs(0, emotion.Angry) {
		t.Error("switched after a single observation despite hysteresis 2")
	}
	if m.Attention() != emotion.Relaxed {
		t.Error("attention changed prematurely")
	}
	// Second agreeing observation: switch.
	if !obs(time.Second, emotion.Angry) {
		t.Error("did not switch after two agreeing observations")
	}
	if m.Attention() != emotion.Tense || m.DecoderMode() != h264.ModeStandard {
		t.Errorf("state %v/%v after switch", m.Attention(), m.DecoderMode())
	}
	if m.Mood() != emotion.Excited {
		t.Error("mood should be excited after angry observations")
	}
	if len(m.Transitions()) == 0 {
		t.Error("no transitions recorded")
	}
}

func TestManagerDisagreementResetsHysteresis(t *testing.T) {
	m, err := NewManager(DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq := []emotion.Label{emotion.Angry, emotion.Calm, emotion.Angry, emotion.Calm}
	for i, l := range seq {
		if _, err := m.Observe(Observation{At: time.Duration(i) * time.Second, Label: l, Confidence: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Alternating labels never accumulate 2 agreements for tense.
	if m.Attention() == emotion.Tense {
		t.Error("alternating observations flipped the state")
	}
}

func TestManagerLowConfidenceDiscarded(t *testing.T) {
	m, err := NewManager(DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Observe(Observation{At: time.Duration(i), Label: emotion.Angry, Confidence: 0.1}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Attention() != emotion.Relaxed {
		t.Error("low-confidence observations changed state")
	}
	obs, disc := m.Stats()
	if obs != 5 || disc != 5 {
		t.Errorf("stats %d/%d, want 5/5", obs, disc)
	}
}

func TestManagerCircumplexPoint(t *testing.T) {
	cfg := DefaultManagerConfig()
	cfg.Hysteresis = 1
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// High-arousal point: tense.
	if _, err := m.Observe(Observation{
		At: 0, Point: emotion.Point{Valence: -0.5, Arousal: 0.9}, HasPoint: true, Confidence: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if m.Attention() != emotion.Tense {
		t.Errorf("attention %v, want tense", m.Attention())
	}
}

func TestManagerValidation(t *testing.T) {
	cfg := DefaultManagerConfig()
	cfg.MinConfidence = 2
	if _, err := NewManager(cfg); err == nil {
		t.Error("bad confidence accepted")
	}
	cfg = DefaultManagerConfig()
	cfg.VideoPolicy = map[emotion.Attention]h264.DecoderMode{}
	if _, err := NewManager(cfg); err == nil {
		t.Error("incomplete policy accepted")
	}
	m, err := NewManager(DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe(Observation{Label: emotion.Label(99), Confidence: 1}); err == nil {
		t.Error("invalid label accepted")
	}
	if _, err := m.Observe(Observation{Label: emotion.Happy, Confidence: 3}); err == nil {
		t.Error("out-of-range confidence accepted")
	}
}

// TestFig10AppManagementCalibration reproduces the paper's headline: 17%
// saving of total memory loaded at app start and 12% saving of loading
// time versus the FIFO baseline, averaged over seeds, within +-4 pp.
func TestFig10AppManagementCalibration(t *testing.T) {
	var seeds []int64
	for s := int64(1); s <= 12; s++ {
		seeds = append(seeds, s)
	}
	mem, tm, err := MeanAppStudy(DefaultAppStudyConfig(), seeds)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("memory saving %.1f%% (paper 17%%), time saving %.1f%% (paper 12%%)", mem, tm)
	if math.Abs(mem-17) > 4 {
		t.Errorf("memory saving %.1f%%, want 17 +- 4", mem)
	}
	if math.Abs(tm-12) > 4 {
		t.Errorf("time saving %.1f%%, want 12 +- 4", tm)
	}
	// Memory saving exceeds time saving, as in Fig 10 (fixed init costs
	// dilute the time side).
	if mem <= tm {
		t.Errorf("memory saving %.1f%% should exceed time saving %.1f%%", mem, tm)
	}
}

// TestFig9ProcessDiagram checks the qualitative Fig 9 claims: under the
// default FIFO manager most processes die after new apps arrive, while the
// emotional manager keeps mood-relevant processes alive across the run.
func TestFig9ProcessDiagram(t *testing.T) {
	cfg := DefaultAppStudyConfig()
	cfg.Monkey.Seed = 1
	res, err := RunAppStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := res.Comparison.Baseline.Device.Trace()
	emo := res.Comparison.Emotional.Device.Trace()
	if base.KillCount("") <= emo.KillCount("") {
		t.Errorf("baseline kills %d should exceed emotional kills %d",
			base.KillCount(""), emo.KillCount(""))
	}
	// Messages is never killed in either run (periodic exemption).
	if base.KillCount("messages") != 0 || emo.KillCount("messages") != 0 {
		t.Error("messages was killed")
	}
	// The ASCII diagram renders one row per app seen.
	art := emo.RenderASCII(res.Horizon, 80)
	if len(art) == 0 {
		t.Fatal("empty diagram")
	}
}

func TestRunAppStudyLearnedTable(t *testing.T) {
	cfg := DefaultAppStudyConfig()
	cfg.LearnedTable = true
	cfg.Monkey.Seed = 2
	res, err := RunAppStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A learned table should still beat FIFO on average workloads; allow
	// weak wins but require it not to be catastrophically worse.
	if res.Comparison.MemorySavingPct < -10 {
		t.Errorf("learned table memory saving %.1f%% catastrophically bad",
			res.Comparison.MemorySavingPct)
	}
}

func TestMeanAppStudyValidation(t *testing.T) {
	if _, _, err := MeanAppStudy(DefaultAppStudyConfig(), nil); err == nil {
		t.Error("no seeds accepted")
	}
}

func TestMoodAppDistributions(t *testing.T) {
	d := MoodAppDistributions()
	if len(d) != 2 {
		t.Fatalf("%d moods", len(d))
	}
	for mood, apps := range d {
		var sum float64
		for _, p := range apps {
			sum += p
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("mood %v distribution sums to %g", mood, sum)
		}
	}
	// Excited favors calling more than calm does.
	if d[emotion.Excited]["voip-call"] <= d[emotion.CalmMood]["voip-call"] {
		t.Error("excited should favor calling apps")
	}
}

// TestWorkloadMatchesFig7Mix validates the monkey generator against the
// Fig 7 subject tables: over many launches, per-category launch
// frequencies must track the proxy subject's usage distribution for the
// dominant categories.
func TestWorkloadMatchesFig7Mix(t *testing.T) {
	dists := MoodAppDistributions()
	mc := monkey.DefaultConfig()
	mc.AppDist = dists
	// Long single-phase sessions per mood for tight statistics.
	for _, mood := range []emotion.Mood{emotion.Excited, emotion.CalmMood} {
		mc.Phases = []monkey.Phase{{Mood: mood, Duration: 10 * time.Hour}}
		mc.MessagingEvery = 0 // isolate the sampling distribution
		mc.RepeatProb = 0     // no working-set correlation
		mc.FavoriteProb = 0   // pure distribution draws
		mc.Seed = 9
		wl, err := monkey.Generate(mc)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[personality.Category]float64{}
		byName := android.CatalogByName()
		for _, e := range wl.Events {
			counts[byName[e.App].Category]++
		}
		total := float64(len(wl.Events))
		subj, err := personality.SubjectByMood(mood)
		if err != nil {
			t.Fatal(err)
		}
		for _, cat := range subj.TopCategories(4) {
			want := subj.Usage[cat]
			got := counts[cat] / total
			if got < want-0.06 || got > want+0.06 {
				t.Errorf("mood %v category %s: simulated %.3f vs Fig 7 %.3f",
					mood, cat, got, want)
			}
		}
	}
}

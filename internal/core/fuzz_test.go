package core

import (
	"math"
	"testing"
	"time"

	"affectedge/internal/emotion"
)

// FuzzObserve drives the Manager with arbitrary observation sequences —
// any label (valid or not), any circumplex point (including NaN/±Inf
// coordinates), any confidence (including NaN and out-of-range values) —
// and checks the control-loop safety contract after every step:
//
//   - Observe never panics;
//   - a rejected observation leaves the manager bit-identical (state,
//     counters, history);
//   - the attention state and mood are always valid and the commanded
//     decoder mode is always the policy's mapping of the attention state;
//   - history length always equals attention switches + mood switches.
//
// This target found a real bug: NaN confidence passed the `< 0 || > 1`
// range check (NaN fails both comparisons) and was then treated as a
// maximally trusted observation; NaN point coordinates similarly fell
// through emotion.AttentionOf's comparison chain and read as Tense. Both
// are now rejected before any state is touched.
//
// Input layout: byte 0 configures the manager (bits 0-2 hysteresis, bits
// 3-4 MinConfidence), then 6-byte records (flags, confidence, valence,
// arousal, dominance, time delta).
func FuzzObserve(f *testing.F) {
	f.Add([]byte{0x02, 0x00, 200, 0, 0, 0, 1})       // plain valid label obs
	f.Add([]byte{0x0a, 0x01, 255, 0, 0, 0, 1})       // NaN confidence (the historical bug)
	f.Add([]byte{0x03, 0x01, 220, 255, 253, 128, 5}) // point with NaN valence, -Inf arousal
	f.Add([]byte{0x01, 0x1e, 180, 0, 0, 0, 2,        // invalid label 15
		0x00, 210, 0, 0, 0, 3})
	f.Add([]byte{0x13, // hysteresis 3, MinConfidence 0.3
		0x01, 200, 40, 220, 128, 1,
		0x01, 30, 40, 220, 128, 1, // discarded: below MinConfidence
		0x01, 254, 40, 220, 128, 1, // +Inf confidence: rejected
		0x01, 200, 40, 220, 128, 1,
		0x01, 200, 40, 220, 128, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		cfg := DefaultManagerConfig()
		cfg.Hysteresis = int(data[0] & 7) // 0 is clamped to 1 by NewManager
		cfg.MinConfidence = float64(data[0]>>3&3) * 0.3
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatalf("config rejected: %v", err)
		}
		at := time.Duration(0)
		for rec := data[1:]; len(rec) >= 6; rec = rec[6:] {
			at += time.Duration(rec[5]) * time.Second
			o := Observation{At: at, Confidence: fuzzFloat(rec[1], 220)}
			if rec[0]&1 == 0 {
				o.Label = emotion.Label(rec[0] >> 1 & 15)
			} else {
				o.HasPoint = true
				o.Point = emotion.Point{
					Valence:   fuzzCoord(rec[2]),
					Arousal:   fuzzCoord(rec[3]),
					Dominance: fuzzCoord(rec[4]),
				}
			}

			type snap struct {
				att              emotion.Attention
				mood             emotion.Mood
				mode             int
				obs, disc        int
				attS, moodS, mdS int
				hist             int
			}
			take := func() snap {
				s := snap{att: m.Attention(), mood: m.Mood(), mode: int(m.DecoderMode()), hist: len(m.Transitions())}
				s.obs, s.disc = m.Stats()
				s.attS, s.moodS, s.mdS = m.Switches()
				return s
			}
			before := take()
			switched, err := m.Observe(o)
			after := take()

			if err != nil {
				if switched {
					t.Fatalf("rejected observation reported a switch: %+v", o)
				}
				if before != after {
					t.Fatalf("rejected observation mutated state:\n before %+v\n after  %+v\n obs %+v", before, after, o)
				}
				continue
			}
			if after.obs != before.obs+1 {
				t.Fatalf("accepted observation not counted: %+v -> %+v", before, after)
			}
			if o.Confidence < cfg.MinConfidence && after.disc != before.disc+1 {
				t.Fatalf("low-confidence observation not discarded: conf %g < %g", o.Confidence, cfg.MinConfidence)
			}
			if !m.Attention().Valid() || !m.Mood().Valid() {
				t.Fatalf("invalid state after %+v: attention %v mood %v", o, m.Attention(), m.Mood())
			}
			if m.DecoderMode() != cfg.VideoPolicy[m.Attention()] {
				t.Fatalf("mode %v violates policy for %v", m.DecoderMode(), m.Attention())
			}
			if switched == (before.attS == after.attS && before.moodS == after.moodS) {
				t.Fatalf("switched=%v inconsistent with counters %+v -> %+v", switched, before, after)
			}
			if after.hist != after.attS+after.moodS {
				t.Fatalf("history %d != attention %d + mood %d switches", after.hist, after.attS, after.moodS)
			}
		}
	})
}

// fuzzFloat decodes a byte to a confidence-like float with NaN and ±Inf
// escape values, spanning valid and out-of-range magnitudes.
func fuzzFloat(b byte, scale float64) float64 {
	switch b {
	case 255:
		return math.NaN()
	case 254:
		return math.Inf(1)
	case 253:
		return math.Inf(-1)
	}
	return float64(b) / scale // up to ~1.15: exercises the >1 rejection
}

// fuzzCoord decodes a byte to a circumplex coordinate in roughly [-1.3, 1.3]
// with the same non-finite escapes.
func fuzzCoord(b byte) float64 {
	switch b {
	case 255:
		return math.NaN()
	case 254:
		return math.Inf(1)
	case 253:
		return math.Inf(-1)
	}
	return (float64(b) - 126) / 100
}

package core

import "affectedge/internal/obs"

// mtr holds this package's metric handles; nil (the default) is the no-op
// state. The core scope reports control-loop behavior: observation flow,
// hysteresis filtering, and the state switches the manager commanded.
var mtr struct {
	observed       *obs.Counter
	discarded      *obs.Counter // below MinConfidence, never reached hysteresis
	attnSwitches   *obs.Counter // committed attention-state changes
	moodSwitches   *obs.Counter // committed mood changes
	modeSwitches   *obs.Counter // decoder-mode changes (subset of attention)
	hysteresisHold *obs.Counter // disagreeing observations absorbed by hysteresis
}

// WireMetrics routes the package's counters into scope s (conventionally
// reg.Scope("core")); nil restores the no-op state. Wire before the
// control loop starts — handle swaps are not synchronized with Observe.
func WireMetrics(s *obs.Scope) {
	mtr.observed = s.Counter("observations")
	mtr.discarded = s.Counter("observations_discarded")
	mtr.attnSwitches = s.Counter("switches.attention")
	mtr.moodSwitches = s.Counter("switches.mood")
	mtr.modeSwitches = s.Counter("switches.decoder_mode")
	mtr.hysteresisHold = s.Counter("hysteresis_held")
}

package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"affectedge/internal/emotion"
)

// randObs draws one observation: mostly labels, sometimes circumplex
// points, with confidences straddling the MinConfidence gate so discard
// paths stay exercised.
func randObs(rng *rand.Rand, t int) Observation {
	o := Observation{
		At:         time.Duration(t+1) * time.Second,
		Confidence: rng.Float64(),
	}
	if rng.Float64() < 0.25 {
		o.HasPoint = true
		o.Point = emotion.Point{
			Valence: rng.Float64()*2 - 1,
			Arousal: rng.Float64()*2 - 1,
		}
	} else {
		o.Label = emotion.Label(rng.Intn(emotion.NumLabels))
	}
	return o
}

// replay feeds obs into m, collecting each Observe result.
func replay(t *testing.T, m *Manager, obs []Observation) []bool {
	t.Helper()
	out := make([]bool, len(obs))
	for i, o := range obs {
		sw, err := m.Observe(o)
		if err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
		out[i] = sw
	}
	return out
}

// roundTrip snapshots src through the gob envelope into a freshly built
// manager with the same config.
func roundTrip(t *testing.T, src *Manager, cfg ManagerConfig) *Manager {
	t.Helper()
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestSnapshotRestoreReplayEquivalence is the property pinning the fleet's
// churn determinism argument: for random observation prefixes, restoring a
// snapshot and replaying the suffix is identical — same per-observation
// switch decisions, same exported state, same transition log — to
// replaying the whole sequence on the original manager.
func TestSnapshotRestoreReplayEquivalence(t *testing.T) {
	for _, hys := range []int{1, 2, 3, 5} {
		for trial := 0; trial < 20; trial++ {
			rng := rand.New(rand.NewSource(int64(hys*1000 + trial)))
			cfg := DefaultManagerConfig()
			cfg.Hysteresis = hys
			obs := make([]Observation, 40+rng.Intn(40))
			for i := range obs {
				obs[i] = randObs(rng, i)
			}
			split := rng.Intn(len(obs) + 1)

			whole, err := NewManager(cfg)
			if err != nil {
				t.Fatal(err)
			}
			wholeSw := replay(t, whole, obs)

			pre, err := NewManager(cfg)
			if err != nil {
				t.Fatal(err)
			}
			replay(t, pre, obs[:split])
			res := roundTrip(t, pre, cfg)
			sufSw := replay(t, res, obs[split:])

			if !reflect.DeepEqual(wholeSw[split:], sufSw) {
				t.Fatalf("hys=%d trial=%d split=%d: suffix switch decisions diverge\nwhole %v\nres   %v",
					hys, trial, split, wholeSw[split:], sufSw)
			}
			if a, b := whole.ExportState(), res.ExportState(); !reflect.DeepEqual(a, b) {
				t.Fatalf("hys=%d trial=%d split=%d: final state diverges\nwhole %+v\nres   %+v", hys, trial, split, a, b)
			}
			if !reflect.DeepEqual(whole.Transitions(), res.Transitions()) {
				t.Fatalf("hys=%d trial=%d split=%d: transition logs diverge", hys, trial, split)
			}
			if whole.Attention() != res.Attention() || whole.Mood() != res.Mood() || whole.DecoderMode() != res.DecoderMode() {
				t.Fatalf("hys=%d trial=%d split=%d: accessors diverge", hys, trial, split)
			}
		}
	}
}

// TestSnapshotHysteresisEdgeTimings tables the splits that sit exactly on
// hysteresis boundaries: the pending accumulator one observation short of
// committing, the observation that commits, and the observation right
// after — the states a naive snapshot (committed state only) would lose.
func TestSnapshotHysteresisEdgeTimings(t *testing.T) {
	// With hysteresis 3, a run of Bored observations (low arousal →
	// Distracted attention, calm mood) from the initial Relaxed/calm state
	// accumulates pendingCount 1, 2 then commits on the third.
	mk := func(l emotion.Label, n int) []Observation {
		out := make([]Observation, n)
		for i := range out {
			out[i] = Observation{At: time.Duration(i+1) * time.Second, Label: l, Confidence: 1}
		}
		return out
	}
	// Sad sits at strongly negative arousal (→ Distracted attention, calm
	// mood); Angry at strongly positive (→ Tense, excited) — both differ
	// from the initial Relaxed/calm state, so runs of either accumulate
	// hysteresis pendings for attention and mood at once.
	angry, bored := emotion.Angry, emotion.Sad
	for _, tc := range []struct {
		name  string
		obs   []Observation
		split int
	}{
		{"pending-one-short", mk(bored, 6), 2},                      // pendingCount == hys-1
		{"pending-started", mk(bored, 6), 1},                        // pendingCount == 1
		{"at-commit", mk(bored, 6), 3},                              // split right on the switch
		{"after-commit", mk(bored, 6), 4},                           // one past the switch
		{"pending-reset", append(mk(bored, 2), mk(angry, 4)...), 2}, // accumulator about to restart
		{"mid-disagreement", append(mk(bored, 2), mk(angry, 4)...), 3},
		{"empty-prefix", mk(bored, 6), 0},
		{"empty-suffix", mk(bored, 6), 6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultManagerConfig()
			cfg.Hysteresis = 3
			whole, err := NewManager(cfg)
			if err != nil {
				t.Fatal(err)
			}
			wholeSw := replay(t, whole, tc.obs)

			pre, err := NewManager(cfg)
			if err != nil {
				t.Fatal(err)
			}
			replay(t, pre, tc.obs[:tc.split])
			res := roundTrip(t, pre, cfg)
			sufSw := replay(t, res, tc.obs[tc.split:])

			if !reflect.DeepEqual(wholeSw[tc.split:], sufSw) {
				t.Fatalf("suffix switch decisions diverge: whole %v, restored %v", wholeSw[tc.split:], sufSw)
			}
			if a, b := whole.ExportState(), res.ExportState(); !reflect.DeepEqual(a, b) {
				t.Fatalf("final state diverges\nwhole %+v\nres   %+v", a, b)
			}
		})
	}
}

// TestSnapshotWrongVersion pins the typed error: a future (or corrupted)
// envelope version must fail with *VersionError, not load garbage.
func TestSnapshotWrongVersion(t *testing.T) {
	cfg := DefaultManagerConfig()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&managerEnvelope{
		Version:       managerStateVersion + 7,
		Hysteresis:    cfg.Hysteresis,
		MinConfidence: cfg.MinConfidence,
		State:         m.ExportState(),
	}); err != nil {
		t.Fatal(err)
	}
	before := m.ExportState()
	err = m.Restore(&buf)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("restore of wrong-version envelope: %v, want *VersionError", err)
	}
	if ve.Got != managerStateVersion+7 || ve.Want != managerStateVersion {
		t.Errorf("version error %+v", ve)
	}
	if got := m.ExportState(); !reflect.DeepEqual(before, got) {
		t.Error("failed restore mutated the manager")
	}
}

// TestSnapshotCorruptAndTruncated: every truncation and a byte-flip of a
// valid snapshot must error without touching the target manager.
func TestSnapshotCorruptAndTruncated(t *testing.T) {
	cfg := DefaultManagerConfig()
	src, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		if _, err := src.Observe(randObs(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	dst, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := dst.ExportState()
	for cut := 0; cut < len(blob); cut += 7 {
		if err := dst.Restore(bytes.NewReader(blob[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(blob))
		}
	}
	// Flip every byte of the payload in turn. A flip may still decode —
	// gob plus the import validation can only reject structural damage,
	// not a flip that lands on another in-range value — but a *failed*
	// restore must never leave partial state behind, and none may panic.
	for at := 0; at < len(blob); at++ {
		bad := append([]byte(nil), blob...)
		bad[at] ^= 0xff
		if err := dst.Restore(bytes.NewReader(bad)); err == nil {
			if err := dst.ImportState(before); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if got := dst.ExportState(); !reflect.DeepEqual(before, got) {
			t.Fatalf("failed restore (flip at %d) half-applied state", at)
		}
	}
}

// TestSnapshotConfigMismatch: state under one hysteresis depth must not
// restore into a manager running another.
func TestSnapshotConfigMismatch(t *testing.T) {
	cfg := DefaultManagerConfig()
	src, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Hysteresis = cfg.Hysteresis + 1
	dst, err := NewManager(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(&buf); err == nil {
		t.Fatal("snapshot restored across differing hysteresis configs")
	}
}

// TestImportStateRejectsGarbage: out-of-range enums and impossible
// counters must be rejected atomically.
func TestImportStateRejectsGarbage(t *testing.T) {
	m, err := NewManager(DefaultManagerConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := m.ExportState()
	valid := before
	for name, st := range map[string]ManagerState{
		"attention":      {Attention: 99, Mood: valid.Mood},
		"pend-attention": {Attention: valid.Attention, Mood: valid.Mood, PendingAttention: -1},
		"mood":           {Attention: valid.Attention, Mood: 99},
		"pend-mood":      {Attention: valid.Attention, Mood: valid.Mood, PendingMood: 99},
		"neg-counter":    {Attention: valid.Attention, Mood: valid.Mood, Observed: -1},
		"discard>obs":    {Attention: valid.Attention, Mood: valid.Mood, Observed: 1, Discarded: 2},
	} {
		if err := m.ImportState(st); err == nil {
			t.Errorf("%s: garbage state accepted", name)
		}
		if got := m.ExportState(); !reflect.DeepEqual(before, got) {
			t.Fatalf("%s: failed import mutated the manager", name)
		}
	}
}

// TestImportStateDisableHistoryMismatch: history flows through the
// snapshot as plain data — a history-bearing snapshot restored into a
// DisableHistory manager keeps the log it was given but appends nothing.
func TestImportStateHistoryCarryOver(t *testing.T) {
	cfg := DefaultManagerConfig()
	src, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := src.Observe(Observation{At: time.Duration(i) * time.Second, Label: emotion.Sad, Confidence: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if len(src.Transitions()) == 0 {
		t.Fatal("setup produced no transitions")
	}
	dst, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportState(src.ExportState()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(src.Transitions(), dst.Transitions()) {
		t.Fatal("transition log not carried over")
	}
	// The restored copy's log must be independent of the source's: writing
	// through one slice must not show up in the other.
	want := append([]Transition(nil), dst.Transitions()...)
	src.Transitions()[0].At = 99 * time.Hour
	if !reflect.DeepEqual(want, dst.Transitions()) {
		t.Fatal("restored manager aliases the source transition slice")
	}
}

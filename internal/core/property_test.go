package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"affectedge/internal/emotion"
	"affectedge/internal/h264"
	"affectedge/internal/video"
)

// This file property-tests the Manager's hysteresis contract on generated
// observation streams:
//
//  1. behavioral equivalence with an independent oracle model,
//  2. no state switch without Hysteresis consecutive agreeing accepted
//     observations,
//  3. discarded (low-confidence) observations are inert: a stream and its
//     accepted-only filtration drive bit-identical trajectories, and an
//     all-low-confidence stream never switches at all,
//  4. the commanded decoder mode is always the configured policy's output
//     for the current (always valid) attention state.

// oracle is an independent model of the documented control-loop semantics,
// deliberately written in a different style from Manager (label/point
// mapping is delegated to package emotion, which both share).
type oracle struct {
	cfg       ManagerConfig
	attention emotion.Attention
	mood      emotion.Mood

	pendAtt   emotion.Attention
	pendAttN  int
	pendMood  emotion.Mood
	pendMoodN int

	attnSw, moodSw, modeSw int
	observed, discarded    int
}

func newOracle(cfg ManagerConfig) *oracle {
	return &oracle{cfg: cfg, attention: emotion.Relaxed, mood: emotion.CalmMood}
}

func (o *oracle) mode() h264.DecoderMode { return o.cfg.VideoPolicy[o.attention] }

// observe mirrors Manager.Observe; returns (switched, rejected).
func (o *oracle) observe(obs Observation) (bool, bool) {
	bad := obs.Confidence != obs.Confidence || obs.Confidence < 0 || obs.Confidence > 1
	if obs.HasPoint {
		for _, v := range []float64{obs.Point.Valence, obs.Point.Arousal, obs.Point.Dominance} {
			if v != v || math.IsInf(v, 0) {
				bad = true
			}
		}
	} else if !obs.Label.Valid() {
		bad = true
	}
	if bad {
		return false, true
	}
	o.observed++
	if obs.Confidence < o.cfg.MinConfidence {
		o.discarded++
		return false, false
	}
	att, mood := classify(obs)
	switched := false
	if att == o.attention {
		o.pendAttN = 0
	} else {
		if att != o.pendAtt {
			o.pendAtt, o.pendAttN = att, 0
		}
		o.pendAttN++
		if o.pendAttN >= o.cfg.Hysteresis {
			prevMode := o.mode()
			o.attention = att
			o.pendAttN = 0
			o.attnSw++
			if o.mode() != prevMode {
				o.modeSw++
			}
			switched = true
		}
	}
	if mood == o.mood {
		o.pendMoodN = 0
	} else {
		if mood != o.pendMood {
			o.pendMood, o.pendMoodN = mood, 0
		}
		o.pendMoodN++
		if o.pendMoodN >= o.cfg.Hysteresis {
			o.mood = mood
			o.pendMoodN = 0
			o.moodSw++
			switched = true
		}
	}
	return switched, false
}

// classify maps a (valid) observation to its attention/mood the same way
// both implementations do, via package emotion.
func classify(o Observation) (emotion.Attention, emotion.Mood) {
	if o.HasPoint {
		return emotion.AttentionOf(o.Point), emotion.MoodOf(emotion.Nearest(o.Point))
	}
	return emotion.AttentionOf(o.Label.Circumplex()), emotion.MoodOf(o.Label)
}

// genStream produces a random observation stream with occasional invalid
// entries disabled (validity is fuzz_test.go's job; properties here need
// mostly accepted observations with a low-confidence mix).
func genStream(rng *rand.Rand, n int, minConf float64) []Observation {
	out := make([]Observation, n)
	at := time.Duration(0)
	for i := range out {
		at += time.Duration(1+rng.Intn(30)) * time.Second
		o := Observation{At: at}
		if rng.Intn(2) == 0 {
			o.Label = emotion.Label(rng.Intn(emotion.NumLabels))
		} else {
			o.HasPoint = true
			o.Point = emotion.Point{
				Valence:   rng.Float64()*2 - 1,
				Arousal:   rng.Float64()*2 - 1,
				Dominance: rng.Float64()*2 - 1,
			}
		}
		if minConf > 0 && rng.Intn(4) == 0 {
			o.Confidence = rng.Float64() * minConf * 0.99 // below threshold
		} else {
			o.Confidence = minConf + rng.Float64()*(1-minConf)
		}
		out[i] = o
	}
	return out
}

func randomConfig(rng *rand.Rand) ManagerConfig {
	cfg := DefaultManagerConfig()
	cfg.Hysteresis = 1 + rng.Intn(4)
	cfg.MinConfidence = [...]float64{0, 0.3, 0.6}[rng.Intn(3)]
	return cfg
}

func TestPropertyManagerMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 200; iter++ {
		cfg := randomConfig(rng)
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		orc := newOracle(cfg)
		stream := genStream(rng, 120, cfg.MinConfidence)
		for i, o := range stream {
			gotSw, err := m.Observe(o)
			wantSw, rejected := orc.observe(o)
			if rejected != (err != nil) {
				t.Fatalf("iter %d obs %d: manager err=%v, oracle rejected=%v", iter, i, err, rejected)
			}
			if gotSw != wantSw {
				t.Fatalf("iter %d obs %d: switched=%v, oracle %v", iter, i, gotSw, wantSw)
			}
			if m.Attention() != orc.attention || m.Mood() != orc.mood || m.DecoderMode() != orc.mode() {
				t.Fatalf("iter %d obs %d: state (%v,%v,%v) diverged from oracle (%v,%v,%v)",
					iter, i, m.Attention(), m.Mood(), m.DecoderMode(), orc.attention, orc.mood, orc.mode())
			}
		}
		a, mo, md := m.Switches()
		if a != orc.attnSw || mo != orc.moodSw || md != orc.modeSw {
			t.Fatalf("iter %d: switches (%d,%d,%d), oracle (%d,%d,%d)", iter, a, mo, md, orc.attnSw, orc.moodSw, orc.modeSw)
		}
		obsN, disc := m.Stats()
		if obsN != orc.observed || disc != orc.discarded {
			t.Fatalf("iter %d: stats (%d,%d), oracle (%d,%d)", iter, obsN, disc, orc.observed, orc.discarded)
		}
	}
}

// TestPropertyHysteresisAgreement: every committed attention switch must be
// preceded by exactly Hysteresis consecutive accepted observations mapping
// to the new state.
func TestPropertyHysteresisAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for iter := 0; iter < 200; iter++ {
		cfg := randomConfig(rng)
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var accepted []emotion.Attention // attention of each accepted observation
		stream := genStream(rng, 150, cfg.MinConfidence)
		for i, o := range stream {
			prevAtt := m.Attention()
			if _, err := m.Observe(o); err != nil {
				t.Fatalf("iter %d obs %d: %v", iter, i, err)
			}
			if o.Confidence >= cfg.MinConfidence {
				att, _ := classify(o)
				accepted = append(accepted, att)
			}
			if newAtt := m.Attention(); newAtt != prevAtt {
				if len(accepted) < cfg.Hysteresis {
					t.Fatalf("iter %d obs %d: switch after only %d accepted observations (H=%d)",
						iter, i, len(accepted), cfg.Hysteresis)
				}
				for _, a := range accepted[len(accepted)-cfg.Hysteresis:] {
					if a != newAtt {
						t.Fatalf("iter %d obs %d: switched to %v without %d consecutive agreements (window %v)",
							iter, i, newAtt, cfg.Hysteresis, accepted[len(accepted)-cfg.Hysteresis:])
					}
				}
			}
		}
	}
}

// TestPropertyDiscardedInert: a stream and its accepted-only filtration
// drive identical trajectories (low confidence can never accelerate a
// switch), and a uniformly low-confidence stream never switches.
func TestPropertyDiscardedInert(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 150; iter++ {
		cfg := randomConfig(rng)
		if cfg.MinConfidence == 0 {
			cfg.MinConfidence = 0.3
		}
		full, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		filtered, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stream := genStream(rng, 150, cfg.MinConfidence)
		for _, o := range stream {
			if _, err := full.Observe(o); err != nil {
				t.Fatal(err)
			}
			if o.Confidence >= cfg.MinConfidence {
				if _, err := filtered.Observe(o); err != nil {
					t.Fatal(err)
				}
			}
		}
		ft := full.Transitions()
		gt := filtered.Transitions()
		if len(ft) != len(gt) {
			t.Fatalf("iter %d: %d transitions with discards present, %d without", iter, len(ft), len(gt))
		}
		for i := range ft {
			if ft[i] != gt[i] {
				t.Fatalf("iter %d transition %d: %+v != %+v", iter, i, ft[i], gt[i])
			}
		}

		// All-low-confidence: no switches, everything discarded.
		low, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range stream {
			o.Confidence = cfg.MinConfidence / 2
			if _, err := low.Observe(o); err != nil {
				t.Fatal(err)
			}
		}
		if a, mo, md := low.Switches(); a != 0 || mo != 0 || md != 0 {
			t.Fatalf("iter %d: low-confidence stream switched (%d,%d,%d)", iter, a, mo, md)
		}
		obsN, disc := low.Stats()
		if obsN != len(stream) || disc != len(stream) {
			t.Fatalf("iter %d: low-confidence stats (%d,%d), want all %d discarded", iter, obsN, disc, len(stream))
		}
	}
}

// TestPropertyModeInPolicyRange: after every observation the commanded
// mode is the policy's mapping of a valid attention state.
func TestPropertyModeInPolicyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	alwaysStandard := video.ModePolicy{
		emotion.Distracted:   h264.ModeStandard,
		emotion.Relaxed:      h264.ModeStandard,
		emotion.Concentrated: h264.ModeStandard,
		emotion.Tense:        h264.ModeStandard,
	}
	policies := []video.ModePolicy{video.PaperPolicy(), alwaysStandard}
	for iter := 0; iter < 150; iter++ {
		cfg := randomConfig(rng)
		cfg.VideoPolicy = policies[rng.Intn(len(policies))]
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		allowed := map[h264.DecoderMode]bool{}
		for _, mode := range cfg.VideoPolicy {
			allowed[mode] = true
		}
		for i, o := range genStream(rng, 100, cfg.MinConfidence) {
			if _, err := m.Observe(o); err != nil {
				t.Fatal(err)
			}
			if !m.Attention().Valid() {
				t.Fatalf("iter %d obs %d: invalid attention %v", iter, i, m.Attention())
			}
			if !m.Mood().Valid() {
				t.Fatalf("iter %d obs %d: invalid mood %v", iter, i, m.Mood())
			}
			if m.DecoderMode() != cfg.VideoPolicy[m.Attention()] {
				t.Fatalf("iter %d obs %d: mode %v, policy says %v", iter, i, m.DecoderMode(), cfg.VideoPolicy[m.Attention()])
			}
			if !allowed[m.DecoderMode()] {
				t.Fatalf("iter %d obs %d: mode %v outside policy range", iter, i, m.DecoderMode())
			}
		}
	}
}

// TestDisableHistory: the history opt-out suppresses the Transitions slice
// but leaves the trajectory and switch counters untouched.
func TestDisableHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	cfg := DefaultManagerConfig()
	withHist, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgNo := cfg
	cfgNo.DisableHistory = true
	noHist, err := NewManager(cfgNo)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range genStream(rng, 200, cfg.MinConfidence) {
		s1, err := withHist.Observe(o)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := noHist.Observe(o)
		if err != nil {
			t.Fatal(err)
		}
		if s1 != s2 {
			t.Fatalf("switch divergence with history disabled")
		}
	}
	if len(noHist.Transitions()) != 0 {
		t.Errorf("DisableHistory recorded %d transitions", len(noHist.Transitions()))
	}
	if len(withHist.Transitions()) == 0 {
		t.Error("default config recorded no transitions (stream too tame for the test)")
	}
	a1, m1, d1 := withHist.Switches()
	a2, m2, d2 := noHist.Switches()
	if a1 != a2 || m1 != m2 || d1 != d2 {
		t.Errorf("switch counters diverged: (%d,%d,%d) vs (%d,%d,%d)", a1, m1, d1, a2, m2, d2)
	}
	if a1 != len(withHist.Transitions())-m1 && a1+m1 != len(withHist.Transitions()) {
		t.Errorf("transitions %d inconsistent with switches attn=%d mood=%d", len(withHist.Transitions()), a1, m1)
	}
}

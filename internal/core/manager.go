// Package core implements the paper's primary contribution (§3, Fig 4):
// the affect-driven real-time system manager that closes the loop between
// an on-device affect classifier and the hardware knobs — the
// affect-adaptive H.264 decoder's operating mode and the Emotional
// Background Manager's kill ranking.
//
// The manager consumes a stream of affect observations (discrete labels or
// circumplex points), applies hysteresis so single misclassifications do
// not thrash the hardware, and exposes the current decoder mode and mood.
// Per the paper, the emotion-to-mode table is user-programmable.
package core

import (
	"fmt"
	"time"

	"affectedge/internal/emotion"
	"affectedge/internal/h264"
	"affectedge/internal/video"
)

// Observation is one affect-classifier output.
type Observation struct {
	At time.Duration
	// Either a discrete label or a circumplex point may be supplied;
	// HasPoint selects which.
	Label    emotion.Label
	Point    emotion.Point
	HasPoint bool
	// Confidence in [0,1]; low-confidence observations need more
	// agreement before the manager switches state.
	Confidence float64
}

// ManagerConfig tunes the control loop.
type ManagerConfig struct {
	// VideoPolicy maps attention states to decoder modes (defaults to the
	// paper's policy).
	VideoPolicy video.ModePolicy
	// Hysteresis is how many consecutive agreeing observations are needed
	// to switch state (default 2). 1 switches immediately.
	Hysteresis int
	// MinConfidence discards observations below this confidence.
	MinConfidence float64
}

// DefaultManagerConfig returns the paper's configuration.
func DefaultManagerConfig() ManagerConfig {
	return ManagerConfig{
		VideoPolicy:   video.PaperPolicy(),
		Hysteresis:    2,
		MinConfidence: 0.3,
	}
}

// Transition records a state change the manager commanded.
type Transition struct {
	At        time.Duration
	Attention emotion.Attention
	Mood      emotion.Mood
	Mode      h264.DecoderMode
}

// Manager is the affect-driven system controller.
type Manager struct {
	cfg ManagerConfig

	attention emotion.Attention
	mood      emotion.Mood
	mode      h264.DecoderMode

	pendingAttention emotion.Attention
	pendingCount     int
	pendingMood      emotion.Mood
	pendingMoodCount int

	transitions []Transition
	observed    int
	discarded   int
}

// NewManager returns a manager starting in the relaxed/calm state.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.VideoPolicy == nil {
		cfg.VideoPolicy = video.PaperPolicy()
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 1
	}
	if cfg.MinConfidence < 0 || cfg.MinConfidence > 1 {
		return nil, fmt.Errorf("core: min confidence %g outside [0,1]", cfg.MinConfidence)
	}
	for _, a := range []emotion.Attention{emotion.Distracted, emotion.Relaxed, emotion.Concentrated, emotion.Tense} {
		if _, ok := cfg.VideoPolicy[a]; !ok {
			return nil, fmt.Errorf("core: video policy missing state %v", a)
		}
	}
	m := &Manager{
		cfg:       cfg,
		attention: emotion.Relaxed,
		mood:      emotion.CalmMood,
	}
	m.mode = cfg.VideoPolicy[m.attention]
	return m, nil
}

// Observe feeds one classifier output and returns whether the manager
// switched state.
func (m *Manager) Observe(o Observation) (switched bool, err error) {
	if o.Confidence < 0 || o.Confidence > 1 {
		return false, fmt.Errorf("core: confidence %g outside [0,1]", o.Confidence)
	}
	m.observed++
	mtr.observed.Inc()
	if o.Confidence < m.cfg.MinConfidence {
		m.discarded++
		mtr.discarded.Inc()
		return false, nil
	}
	var att emotion.Attention
	var mood emotion.Mood
	if o.HasPoint {
		att = emotion.AttentionOf(o.Point)
		mood = emotion.MoodOf(emotion.Nearest(o.Point))
	} else {
		if !o.Label.Valid() {
			return false, fmt.Errorf("core: invalid label %d", int(o.Label))
		}
		att = emotion.AttentionOf(o.Label.Circumplex())
		mood = emotion.MoodOf(o.Label)
	}
	switched = m.updateAttention(o.At, att) || switched
	switched = m.updateMood(o.At, mood) || switched
	return switched, nil
}

// updateAttention applies hysteresis to attention-state changes.
func (m *Manager) updateAttention(at time.Duration, att emotion.Attention) bool {
	if att == m.attention {
		m.pendingCount = 0
		return false
	}
	if att != m.pendingAttention {
		m.pendingAttention = att
		m.pendingCount = 0
	}
	m.pendingCount++
	if m.pendingCount < m.cfg.Hysteresis {
		mtr.hysteresisHold.Inc()
		return false
	}
	m.attention = att
	prevMode := m.mode
	m.mode = m.cfg.VideoPolicy[att]
	m.pendingCount = 0
	m.transitions = append(m.transitions, Transition{At: at, Attention: att, Mood: m.mood, Mode: m.mode})
	mtr.attnSwitches.Inc()
	if m.mode != prevMode {
		mtr.modeSwitches.Inc()
	}
	return true
}

// updateMood applies hysteresis to mood changes.
func (m *Manager) updateMood(at time.Duration, mood emotion.Mood) bool {
	if mood == m.mood {
		m.pendingMoodCount = 0
		return false
	}
	if mood != m.pendingMood {
		m.pendingMood = mood
		m.pendingMoodCount = 0
	}
	m.pendingMoodCount++
	if m.pendingMoodCount < m.cfg.Hysteresis {
		mtr.hysteresisHold.Inc()
		return false
	}
	m.mood = mood
	m.pendingMoodCount = 0
	m.transitions = append(m.transitions, Transition{At: at, Attention: m.attention, Mood: mood, Mode: m.mode})
	mtr.moodSwitches.Inc()
	return true
}

// Attention returns the current attention state.
func (m *Manager) Attention() emotion.Attention { return m.attention }

// Mood returns the current coarse mood (drives the app manager).
func (m *Manager) Mood() emotion.Mood { return m.mood }

// DecoderMode returns the current video decoder operating mode.
func (m *Manager) DecoderMode() h264.DecoderMode { return m.mode }

// Transitions returns the state-change history.
func (m *Manager) Transitions() []Transition { return m.transitions }

// Stats returns (observations consumed, observations discarded for low
// confidence).
func (m *Manager) Stats() (observed, discarded int) { return m.observed, m.discarded }

// Package core implements the paper's primary contribution (§3, Fig 4):
// the affect-driven real-time system manager that closes the loop between
// an on-device affect classifier and the hardware knobs — the
// affect-adaptive H.264 decoder's operating mode and the Emotional
// Background Manager's kill ranking.
//
// The manager consumes a stream of affect observations (discrete labels or
// circumplex points), applies hysteresis so single misclassifications do
// not thrash the hardware, and exposes the current decoder mode and mood.
// Per the paper, the emotion-to-mode table is user-programmable.
package core

import (
	"fmt"
	"math"
	"time"

	"affectedge/internal/emotion"
	"affectedge/internal/h264"
	"affectedge/internal/video"
)

// Observation is one affect-classifier output.
type Observation struct {
	At time.Duration
	// Either a discrete label or a circumplex point may be supplied;
	// HasPoint selects which.
	Label    emotion.Label
	Point    emotion.Point
	HasPoint bool
	// Confidence in [0,1]; low-confidence observations need more
	// agreement before the manager switches state.
	Confidence float64
}

// ManagerConfig tunes the control loop.
type ManagerConfig struct {
	// VideoPolicy maps attention states to decoder modes (defaults to the
	// paper's policy).
	VideoPolicy video.ModePolicy
	// Hysteresis is how many consecutive agreeing observations are needed
	// to switch state (default 2). 1 switches immediately.
	Hysteresis int
	// MinConfidence discards observations below this confidence.
	MinConfidence float64
	// DisableHistory stops the manager from recording the Transitions
	// slice. Long-lived sessions (fleet serving) set this so per-session
	// memory stays bounded; the Switches counters remain available.
	DisableHistory bool
}

// DefaultManagerConfig returns the paper's configuration.
func DefaultManagerConfig() ManagerConfig {
	return ManagerConfig{
		VideoPolicy:   video.PaperPolicy(),
		Hysteresis:    2,
		MinConfidence: 0.3,
	}
}

// Transition records a state change the manager commanded.
type Transition struct {
	At        time.Duration
	Attention emotion.Attention
	Mood      emotion.Mood
	Mode      h264.DecoderMode
}

// Manager is the affect-driven system controller.
type Manager struct {
	cfg ManagerConfig

	attention emotion.Attention
	mood      emotion.Mood
	mode      h264.DecoderMode

	pendingAttention emotion.Attention
	pendingCount     int
	pendingMood      emotion.Mood
	pendingMoodCount int

	transitions []Transition
	observed    int
	discarded   int

	attnSwitches int
	moodSwitches int
	modeSwitches int
}

// NewManager returns a manager starting in the relaxed/calm state.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.VideoPolicy == nil {
		cfg.VideoPolicy = video.PaperPolicy()
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 1
	}
	if cfg.MinConfidence < 0 || cfg.MinConfidence > 1 {
		return nil, fmt.Errorf("core: min confidence %g outside [0,1]", cfg.MinConfidence)
	}
	for _, a := range []emotion.Attention{emotion.Distracted, emotion.Relaxed, emotion.Concentrated, emotion.Tense} {
		if _, ok := cfg.VideoPolicy[a]; !ok {
			return nil, fmt.Errorf("core: video policy missing state %v", a)
		}
	}
	m := &Manager{
		cfg:       cfg,
		attention: emotion.Relaxed,
		mood:      emotion.CalmMood,
	}
	m.mode = cfg.VideoPolicy[m.attention]
	return m, nil
}

// Observe feeds one classifier output and returns whether the manager
// switched state.
func (m *Manager) Observe(o Observation) (switched bool, err error) {
	// NaN fails both range comparisons, so it must be rejected explicitly:
	// an unchecked NaN confidence would sail past MinConfidence and count
	// as a maximally trusted observation (found by FuzzObserve).
	if math.IsNaN(o.Confidence) || o.Confidence < 0 || o.Confidence > 1 {
		return false, fmt.Errorf("core: confidence %g outside [0,1]", o.Confidence)
	}
	// Validate the whole observation before touching any state so a
	// rejected observation leaves the manager (and its counters) exactly
	// as it was.
	var att emotion.Attention
	var mood emotion.Mood
	if o.HasPoint {
		// A classifier emitting NaN/Inf coordinates is broken; reject
		// rather than let comparison-chain fallthrough pick an arbitrary
		// attention state (NaN arousal previously read as Tense).
		if !finitePoint(o.Point) {
			return false, fmt.Errorf("core: non-finite circumplex point %+v", o.Point)
		}
		att = emotion.AttentionOf(o.Point)
		mood = emotion.MoodOf(emotion.Nearest(o.Point))
	} else {
		if !o.Label.Valid() {
			return false, fmt.Errorf("core: invalid label %d", int(o.Label))
		}
		att = emotion.AttentionOf(o.Label.Circumplex())
		mood = emotion.MoodOf(o.Label)
	}
	m.observed++
	mtr.observed.Inc()
	if o.Confidence < m.cfg.MinConfidence {
		m.discarded++
		mtr.discarded.Inc()
		return false, nil
	}
	switched = m.updateAttention(o.At, att) || switched
	switched = m.updateMood(o.At, mood) || switched
	return switched, nil
}

// finitePoint reports whether every coordinate is a finite float.
func finitePoint(p emotion.Point) bool {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	return finite(p.Valence) && finite(p.Arousal) && finite(p.Dominance)
}

// updateAttention applies hysteresis to attention-state changes.
func (m *Manager) updateAttention(at time.Duration, att emotion.Attention) bool {
	if att == m.attention {
		m.pendingCount = 0
		return false
	}
	if att != m.pendingAttention {
		m.pendingAttention = att
		m.pendingCount = 0
	}
	m.pendingCount++
	if m.pendingCount < m.cfg.Hysteresis {
		mtr.hysteresisHold.Inc()
		return false
	}
	m.attention = att
	prevMode := m.mode
	m.mode = m.cfg.VideoPolicy[att]
	m.pendingCount = 0
	if !m.cfg.DisableHistory {
		m.transitions = append(m.transitions, Transition{At: at, Attention: att, Mood: m.mood, Mode: m.mode})
	}
	m.attnSwitches++
	mtr.attnSwitches.Inc()
	if m.mode != prevMode {
		m.modeSwitches++
		mtr.modeSwitches.Inc()
	}
	return true
}

// updateMood applies hysteresis to mood changes.
func (m *Manager) updateMood(at time.Duration, mood emotion.Mood) bool {
	if mood == m.mood {
		m.pendingMoodCount = 0
		return false
	}
	if mood != m.pendingMood {
		m.pendingMood = mood
		m.pendingMoodCount = 0
	}
	m.pendingMoodCount++
	if m.pendingMoodCount < m.cfg.Hysteresis {
		mtr.hysteresisHold.Inc()
		return false
	}
	m.mood = mood
	m.pendingMoodCount = 0
	if !m.cfg.DisableHistory {
		m.transitions = append(m.transitions, Transition{At: at, Attention: m.attention, Mood: mood, Mode: m.mode})
	}
	m.moodSwitches++
	mtr.moodSwitches.Inc()
	return true
}

// Attention returns the current attention state.
func (m *Manager) Attention() emotion.Attention { return m.attention }

// Mood returns the current coarse mood (drives the app manager).
func (m *Manager) Mood() emotion.Mood { return m.mood }

// DecoderMode returns the current video decoder operating mode.
func (m *Manager) DecoderMode() h264.DecoderMode { return m.mode }

// Transitions returns the state-change history.
func (m *Manager) Transitions() []Transition { return m.transitions }

// Stats returns (observations consumed, observations discarded for low
// confidence).
func (m *Manager) Stats() (observed, discarded int) { return m.observed, m.discarded }

// Switches returns the committed state-change counts: attention switches,
// mood switches, and the subset of attention switches that changed the
// decoder mode. Available even with DisableHistory set.
func (m *Manager) Switches() (attention, mood, mode int) {
	return m.attnSwitches, m.moodSwitches, m.modeSwitches
}

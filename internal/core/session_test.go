package core

import (
	"testing"
	"time"
)

func TestRunSessionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integrated session skipped in -short mode")
	}
	cfg := DefaultSessionConfig()
	res, err := RunSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The manager must have tracked the SC timeline: several transitions,
	// and decent agreement with ground truth.
	if len(res.Transitions) < 2 {
		t.Errorf("only %d manager transitions over 40 min", len(res.Transitions))
	}
	if res.Observations < 70 { // ~80 observations at 30 s cadence
		t.Errorf("only %d observations", res.Observations)
	}
	if res.AttentionAccuracy < 0.6 {
		t.Errorf("attention accuracy %.2f", res.AttentionAccuracy)
	}
	// Affect-driven video must save energy versus always-standard.
	if res.VideoSavingPct <= 5 {
		t.Errorf("video saving %.1f%% too small", res.VideoSavingPct)
	}
	if res.VideoSavingPct >= 40 {
		t.Errorf("video saving %.1f%% implausibly large", res.VideoSavingPct)
	}
	// Both devices replayed the same launches.
	if res.AppEmotional.Launches != res.AppBaseline.Launches {
		t.Error("devices saw different workloads")
	}
	if res.AppEmotional.Launches == 0 {
		t.Error("no app launches in session")
	}
}

func TestRunSessionDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("integrated session skipped in -short mode")
	}
	cfg := DefaultSessionConfig()
	cfg.Duration = 10 * time.Minute
	a, err := RunSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.VideoEnergy != b.VideoEnergy || a.AppEmotional != b.AppEmotional {
		t.Error("session not deterministic")
	}
	if len(a.Transitions) != len(b.Transitions) {
		t.Error("transition counts differ")
	}
}

func TestRunSessionValidation(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.Duration = 0
	if _, err := RunSession(cfg); err == nil {
		t.Error("zero duration accepted")
	}
	cfg = DefaultSessionConfig()
	cfg.ObservationEvery = 0
	if _, err := RunSession(cfg); err == nil {
		t.Error("zero observation cadence accepted")
	}
}

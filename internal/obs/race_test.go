package obs

import (
	"runtime"
	"sync"
	"testing"
)

// TestRegistryConcurrent is the -race stress test for the registry: many
// goroutines hammer Inc/Add/Observe/SetMax on shared handles — and keep
// registering (get-or-create races) — while a snapshotter reads
// concurrently. Final totals are checked exactly, so this also catches
// lost updates, not just data races. `make test-race` covers it via
// `go test -race ./...`.
func TestRegistryConcurrent(t *testing.T) {
	const (
		perG = 2000
		maxV = 1000
	)
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	r := NewRegistry()
	c := r.Counter("stress.count")
	g := r.Gauge("stress.hw")
	h := r.Histogram("stress.values", []int64{100, 250, 500, 900})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshotter: snapshots during updates must stay readable
	// (sorted, fixed bucket shapes); exact totals are checked at the end.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			if hs, ok := snap.Histogram("stress.values"); ok && len(hs.Counts) != 5 {
				t.Errorf("snapshot bucket shape %d, want 5", len(hs.Counts))
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				v := int64((w*perG + i) % maxV)
				h.Observe(v)
				g.SetMax(v)
				// Get-or-create race: everyone asks for the same names.
				r.Counter("stress.count").Add(0)
				r.Histogram("stress.values", []int64{100, 250, 500, 900})
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1)
			}
		}()
	}
	// Wait for the workers (all but the snapshotter), then stop it.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Signal the snapshotter once worker counts are final: workers hold
	// 2*workers wg slots plus the snapshotter's one; simplest is to wait
	// on the exact totals below after closing stop once counters settle.
	for c.Value() < int64(2*workers*perG) {
		runtime.Gosched()
	}
	close(stop)
	<-done

	if got, want := c.Value(), int64(2*workers*perG); got != want {
		t.Fatalf("counter = %d, want %d (lost updates)", got, want)
	}
	if got := h.Count(); got != int64(workers*perG) {
		t.Fatalf("histogram count = %d, want %d", got, int64(workers*perG))
	}
	if got := g.Value(); got != maxV-1 {
		t.Fatalf("high-water gauge = %d, want %d", got, maxV-1)
	}
	snap, _ := r.Snapshot().Histogram("stress.values")
	var total int64
	for _, n := range snap.Counts {
		total += n
	}
	if total != snap.Count {
		t.Fatalf("final bucket total %d != count %d", total, snap.Count)
	}
}

package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []int64{10, 100, 1000})
	// 100 observations uniform over (0,100]: 50 in (0,10]... no — place
	// them explicitly: 10 at 5, 80 at 50, 10 at 5000 (overflow).
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	for i := 0; i < 80; i++ {
		h.Observe(50)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5000)
	}
	snap, ok := reg.Snapshot().Histogram("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}

	// p50: rank 50 of 100 → bucket (10,100] covering ranks 11..90;
	// interpolate 10 + 90*(50-10)/80 = 55.
	if got := snap.Quantile(0.50); math.Abs(got-55) > 1e-9 {
		t.Errorf("p50 = %g, want 55", got)
	}
	// p05 lands in the first bucket, interpolated from 0.
	if got := snap.Quantile(0.05); got <= 0 || got > 10 {
		t.Errorf("p05 = %g, want in (0,10]", got)
	}
	// p95 lands in the overflow bucket: interpolated toward the exact
	// max, never past it.
	if got := snap.Quantile(0.95); got < 1000 || got > 5000 {
		t.Errorf("p95 = %g, want in [1000,5000]", got)
	}
	if got := snap.Quantile(1.0); got != 5000 {
		t.Errorf("p100 = %g, want exact max 5000", got)
	}
	// q > 1 clamps; q <= 0 and empty histograms return 0.
	if got := snap.Quantile(2); got != 5000 {
		t.Errorf("clamped q = %g, want 5000", got)
	}
	if got := snap.Quantile(0); got != 0 {
		t.Errorf("q=0 → %g, want 0", got)
	}
	if got := (HistogramSnap{}).Quantile(0.5); got != 0 {
		t.Errorf("empty → %g, want 0", got)
	}

	// All mass below the first bound: estimates stay within [0, Max].
	reg2 := NewRegistry()
	h2 := reg2.Histogram("small", []int64{1000})
	h2.Observe(3)
	h2.Observe(7)
	s2, _ := reg2.Snapshot().Histogram("small")
	if got := s2.Quantile(0.99); got < 0 || got > 7 {
		t.Errorf("clamped-to-max estimate = %g, want <= observed max 7", got)
	}
}

package obshttp

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"affectedge/internal/obs"
)

func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Scope("h264").Counter("nal_deleted").Add(9)
	mux := NewMux(reg)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if snap.Counter("h264.nal_deleted") != 9 {
		t.Fatalf("metric lost over HTTP: %s", rec.Body.String())
	}
}

func TestExpvarAndPprof(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x").Inc()
	mux := NewMux(reg)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "affectedge") {
		t.Fatalf("/debug/vars status %d body %.200s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/ status %d", rec.Code)
	}

	// Publish twice: the latest registry must win without panicking.
	reg2 := obs.NewRegistry()
	reg2.Counter("y").Add(2)
	Publish(reg2)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if !strings.Contains(rec.Body.String(), "\"y\"") {
		t.Fatalf("republished registry not visible: %.300s", rec.Body.String())
	}
}

// Package obshttp exposes an obs.Registry over HTTP for long-running
// processes: a JSON metrics endpoint, the standard expvar page, and the
// net/http/pprof profiling handlers. It lives in its own package so that
// internal/obs — which every instrumented package imports — never pulls
// net/http into binaries that do not serve.
package obshttp

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"affectedge/internal/obs"
)

// current is the registry behind the published expvar; Publish swaps it
// so repeated wiring (tests, reruns) never double-publishes.
var (
	current     atomic.Pointer[obs.Registry]
	publishOnce sync.Once
)

// Publish exposes reg's snapshot as the expvar "affectedge" (visible on
// /debug/vars). Safe to call more than once; the latest registry wins.
func Publish(reg *obs.Registry) {
	current.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("affectedge", expvar.Func(func() any {
			return current.Load().Snapshot()
		}))
	})
}

// Handler serves reg's snapshot as indented JSON.
func Handler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// NewMux returns a mux with the full debug surface:
//
//	/metrics          obs snapshot as JSON
//	/debug/vars       expvar (includes the published registry)
//	/debug/pprof/...  CPU/heap/goroutine profiles
func NewMux(reg *obs.Registry) *http.ServeMux {
	Publish(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug server on addr in a new goroutine and returns
// the server so the caller can Close it. Serve errors (port in use)
// surface on the returned channel.
func Serve(addr string, reg *obs.Registry) (*http.Server, <-chan error) {
	srv := &http.Server{Addr: addr, Handler: NewMux(reg)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	return srv, errc
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("a.count"); again != c {
		t.Fatal("get-or-create returned a different counter")
	}

	g := r.Gauge("a.gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(5) // below current: no change
	g.SetMax(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge after SetMax = %d, want 42", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 100, 1000})
	for _, v := range []int64{-5, 0, 10, 11, 100, 500, 1000, 5000} {
		h.Observe(v)
	}
	snap, ok := r.Snapshot().Histogram("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// Buckets: <=10: -5,0,10 → 3; <=100: 11,100 → 2; <=1000: 500,1000 → 2; over: 5000 → 1.
	want := []int64{3, 2, 2, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 8 || snap.Max != 5000 {
		t.Fatalf("count=%d max=%d, want 8/5000", snap.Count, snap.Max)
	}
	if snap.Sum != -5+0+10+11+100+500+1000+5000 {
		t.Fatalf("sum = %d", snap.Sum)
	}
	if m := snap.Mean(); m != float64(snap.Sum)/8 {
		t.Fatalf("mean = %g", m)
	}
	h.ObserveDuration(2 * time.Millisecond)
	if got := h.Count(); got != 9 {
		t.Fatalf("count after ObserveDuration = %d", got)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewRegistry().Histogram("bad", []int64{10, 10})
}

// TestNop: every nil handle must be callable and inert — this is the
// disabled-instrumentation contract the hot paths rely on.
func TestNop(t *testing.T) {
	var s *Scope = Nop
	if s.Enabled() {
		t.Fatal("nil scope reports enabled")
	}
	c, g, h := s.Counter("c"), s.Gauge("g"), s.Histogram("h", DurationBuckets())
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	g.SetMax(9)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Enabled() {
		t.Fatal("nil handles recorded something")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Scope("x") != nil {
		t.Fatal("nil registry handed out live handles")
	}
	r.Reset()
	if snap := r.Snapshot(); len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestScopePrefix(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("h264")
	s.Counter("nal_deleted").Add(7)
	if got := r.Snapshot().Counter("h264.nal_deleted"); got != 7 {
		t.Fatalf("scoped counter = %d, want 7", got)
	}
}

// TestSnapshotDeterministic: registration order must not leak into
// snapshot order, and two snapshots of the same state must be identical.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(names []string) Snapshot {
		r := NewRegistry()
		for _, n := range names {
			r.Counter(n).Inc()
			r.Gauge("g." + n).Set(1)
			r.Histogram("h."+n, []int64{1}).Observe(1)
		}
		return r.Snapshot()
	}
	a := build([]string{"zeta", "alpha", "mid"})
	b := build([]string{"mid", "zeta", "alpha"})
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("snapshot depends on registration order:\n%s\n%s", ja, jb)
	}
	for i := 1; i < len(a.Counters); i++ {
		if a.Counters[i-1].Name >= a.Counters[i].Name {
			t.Fatalf("counters not sorted: %q >= %q", a.Counters[i-1].Name, a.Counters[i].Name)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Scope("app").Counter("kills").Add(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counter("app.kills") != 3 {
		t.Fatalf("JSON round trip lost value:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "\"app.kills\"") {
		t.Fatalf("metric name missing:\n%s", buf.String())
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []int64{10})
	g := r.Gauge("g")
	c.Add(5)
	g.Set(9)
	h.Observe(3)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("reset left values behind")
	}
	snap, _ := r.Snapshot().Histogram("h")
	if snap.Sum != 0 || snap.Max != 0 || snap.Counts[0] != 0 {
		t.Fatalf("reset left histogram state: %+v", snap)
	}
	c.Inc() // handles stay live after reset
	if c.Value() != 1 {
		t.Fatal("handle dead after reset")
	}
}

func TestBucketHelpers(t *testing.T) {
	for _, bs := range [][]int64{DurationBuckets(), SizeBuckets(), LinearBuckets(0, 8, 16)} {
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Fatalf("helper bounds not ascending: %v", bs)
			}
		}
	}
	if lb := LinearBuckets(2, 3, 3); lb[0] != 2 || lb[1] != 5 || lb[2] != 8 {
		t.Fatalf("LinearBuckets = %v", lb)
	}
}

func TestNestedScope(t *testing.T) {
	reg := NewRegistry()
	shard := reg.Scope("fleet").Scope("shard03")
	shard.Counter("drops").Add(4)
	shard.Gauge("queue_depth").Set(9)
	snap := reg.Snapshot()
	if got := snap.Counter("fleet.shard03.drops"); got != 4 {
		t.Errorf("nested counter = %d, want 4", got)
	}
	if got := snap.Gauge("fleet.shard03.queue_depth"); got != 9 {
		t.Errorf("nested gauge = %d, want 9", got)
	}
	var nilScope *Scope
	if nested := nilScope.Scope("x"); nested != nil {
		t.Error("nil scope nested to non-nil")
	}
	if nilScope.Scope("x").Counter("c") != nil {
		t.Error("nil nested scope handed out live counter")
	}
}

// Package obs is the repo's zero-allocation observability layer: atomic
// counters and gauges, fixed-bucket histograms, and a named registry with
// deterministic snapshots and JSON export.
//
// Design constraints, in order:
//
//  1. Hot-path operations (Inc, Add, Set, SetMax, Observe) perform zero
//     heap allocations and touch only the metric's own atomics. Handles
//     are resolved once at wire-up time, never per event.
//  2. Every handle method is nil-receiver safe: a nil *Counter, *Gauge,
//     *Histogram, or *Scope is the Nop implementation. Instrumented code
//     holds plain pointers and calls through unconditionally; when metrics
//     are not wired the call is an inlinable nil-check and nothing else,
//     so disabled instrumentation costs nothing measurable.
//  3. Snapshot output is deterministic: metrics sort by name, histogram
//     buckets are fixed at registration, and JSON field order is fixed by
//     the snapshot structs.
//
// The package depends only on the standard library (sync, sync/atomic,
// encoding/json, sort, time) and is safe for concurrent use: any number
// of goroutines may update metrics while others snapshot.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use;
// a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark operation (pre-store buffer occupancy, peak RAM).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over int64 observations. Bucket i
// counts observations v <= Bounds[i]; one implicit overflow bucket counts
// the rest. Sum, Count, and Max are tracked exactly. A nil *Histogram is
// a no-op.
type Histogram struct {
	bounds []int64 // strictly ascending, fixed at registration
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

func newHistogram(bounds []int64) (*Histogram, error) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds not strictly ascending at %d (%d <= %d)",
				i, bounds[i], bounds[i-1])
		}
	}
	cp := make([]int64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, counts: make([]atomic.Int64, len(bounds)+1)}, nil
}

// Observe records one value. Allocation-free; the bucket scan is linear
// (bucket counts are small and the loop is branch-predictable).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Observe(d.Microseconds())
	}
}

// Enabled reports whether observations are recorded (false for nil). Use
// it to guard setup work, e.g. capturing a start time, that only matters
// when metrics are wired.
func (h *Histogram) Enabled() bool { return h != nil }

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Common bucket layouts. All values are int64; duration histograms store
// microseconds.

// DurationBuckets are exponential microsecond buckets from 100µs to ~27min:
// 100µs, 400µs, 1.6ms, 6.4ms, ... (×4 per step, 12 buckets).
func DurationBuckets() []int64 {
	out := make([]int64, 12)
	v := int64(100)
	for i := range out {
		out[i] = v
		v *= 4
	}
	return out
}

// SizeBuckets are power-of-4 byte-size buckets from 16B to ~4GB.
func SizeBuckets() []int64 {
	out := make([]int64, 14)
	v := int64(16)
	for i := range out {
		out[i] = v
		v *= 4
	}
	return out
}

// ExponentialBuckets returns n buckets start, start*factor, ...
func ExponentialBuckets(start, factor int64, n int) []int64 {
	out := make([]int64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n buckets start, start+step, ...
func LinearBuckets(start, step int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*step
	}
	return out
}

// Registry owns named metrics. Metric registration (Counter, Gauge,
// Histogram) is get-or-create and may happen at any time; updates and
// snapshots may proceed concurrently. A nil *Registry hands out nil
// handles, so an unwired program runs entirely on the Nop path.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Bounds must be strictly ascending; a
// redefinition with different bounds keeps the original buckets (the
// first registration wins, so handles stay stable).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		var err error
		h, err = newHistogram(bounds)
		if err != nil {
			panic(err) // static bucket layouts; a bad one is a programming error
		}
		r.hists[name] = h
	}
	return h
}

// Scope returns a handle that prefixes metric names with "prefix.".
// A nil registry yields a nil scope.
func (r *Registry) Scope(prefix string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{r: r, prefix: prefix + "."}
}

// Reset zeroes every registered metric (registrations and handles stay
// valid). Intended for tests and per-run dumps.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counts {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
		h.max.Store(0)
	}
}

// Scope is a name-prefixed view of a registry. The Nop implementation is
// a nil *Scope: it hands out nil metric handles whose methods do nothing.
type Scope struct {
	r      *Registry
	prefix string
}

// Nop is the disabled scope: every handle it returns is a no-op.
var Nop *Scope

// Enabled reports whether metrics from this scope record anything.
func (s *Scope) Enabled() bool { return s != nil }

// Counter returns the scoped counter (nil for a nil scope).
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.r.Counter(s.prefix + name)
}

// Gauge returns the scoped gauge (nil for a nil scope).
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.r.Gauge(s.prefix + name)
}

// Histogram returns the scoped histogram (nil for a nil scope).
func (s *Scope) Histogram(name string, bounds []int64) *Histogram {
	if s == nil {
		return nil
	}
	return s.r.Histogram(s.prefix+name, bounds)
}

// Scope returns a nested scope: metrics registered through it carry the
// "parent.child." prefix. Sharded subsystems use this to hand each shard
// its own metric namespace ("fleet.shard03.queue_depth") while keeping a
// single wire-up point. A nil scope nests to nil.
func (s *Scope) Scope(prefix string) *Scope {
	if s == nil {
		return nil
	}
	return &Scope{r: s.r, prefix: s.prefix + prefix + "."}
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnap is one histogram in a snapshot. Counts has one entry per
// bound plus the overflow bucket.
type HistogramSnap struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Max    int64   `json:"max"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
}

// Mean returns the mean observation (0 when empty).
func (h HistogramSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-quantile (q in (0, 1]) from the bucket counts
// by linear interpolation inside the covering bucket — the standard
// fixed-bucket estimator (what a Prometheus histogram_quantile computes),
// here so latency reports can quote p50/p95/p99 straight from a snapshot.
// The first bucket interpolates from 0; the overflow bucket interpolates
// toward the exact tracked Max, so the estimate never exceeds an observed
// value. Returns 0 on an empty histogram.
func (h HistogramSnap) Quantile(q float64) float64 {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	lo := 0.0
	for i, c := range h.Counts {
		if c == 0 {
			if i < len(h.Bounds) {
				lo = float64(h.Bounds[i])
			}
			continue
		}
		hi := float64(h.Max)
		if i < len(h.Bounds) {
			hi = float64(h.Bounds[i])
		}
		if hi > float64(h.Max) {
			hi = float64(h.Max) // bucket upper bound beyond anything observed
		}
		if cum+float64(c) >= rank {
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += float64(c)
		lo = hi
	}
	return float64(h.Max)
}

// Snapshot is a point-in-time copy of every registered metric, sorted by
// name within each kind.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Counter returns the named counter value (0 when absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge value (0 when absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the named histogram snapshot.
func (s Snapshot) Histogram(name string) (HistogramSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnap{}, false
}

// Snapshot copies every metric. Values are read atomically per metric;
// the set of metrics is consistent, individual values are each atomic
// reads (a snapshot taken during updates is a valid interleaving). The
// output is deterministic: sorted by name, fixed bucket layout.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap.Counters = make([]CounterSnap, 0, len(r.counts))
	for name, c := range r.counts {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.v.Load()})
	}
	snap.Gauges = make([]GaugeSnap, 0, len(r.gauges))
	for name, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Value: g.v.Load()})
	}
	snap.Histograms = make([]HistogramSnap, 0, len(r.hists))
	for name, h := range r.hists {
		hs := HistogramSnap{
			Name:   name,
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
			Max:    h.max.Load(),
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

// WriteJSON writes the current snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

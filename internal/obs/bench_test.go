package obs

import "testing"

// Zero-allocation proof for every hot-path operation, live and nop.
// Run with -benchmem: all of these must report 0 allocs/op.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSetMax(b *testing.B) {
	g := NewRegistry().Gauge("g")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.SetMax(int64(i & 1023))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", DurationBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xffff))
	}
}

func BenchmarkNopCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNopHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for _, s := range []string{"a", "b", "c", "d"} {
		sc := r.Scope(s)
		sc.Counter("count").Inc()
		sc.Gauge("gauge").Set(1)
		sc.Histogram("hist", DurationBuckets()).Observe(1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}

package video

import (
	"strings"
	"testing"

	"affectedge/internal/emotion"
	"affectedge/internal/h264"
)

func TestRenderTimeline(t *testing.T) {
	rates := &ModeRates{EnergyPerMin: map[h264.DecoderMode]float64{
		h264.ModeStandard: 10, h264.ModeDFOff: 7, h264.ModeDeletion: 9, h264.ModeCombined: 6,
	}}
	res, err := RunWithSchedule(uulmSchedule(), rates, PaperPolicy())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTimeline(res, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 4 mode rows + state strip + minutes axis.
	if len(lines) != 6 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	for _, mode := range h264.Modes() {
		found := false
		for _, l := range lines {
			if strings.HasPrefix(l, mode.String()) && strings.Contains(l, "#") {
				found = true
			}
		}
		if !found {
			t.Errorf("mode %v has no active span:\n%s", mode, out)
		}
	}
	// The state strip carries the four segment initials in order.
	strip := lines[4]
	for _, ch := range []string{"D", "C", "T", "R"} {
		if !strings.Contains(strip, ch) {
			t.Errorf("state strip missing %q: %s", ch, strip)
		}
	}
	if strings.Index(strip, "D") > strings.Index(strip, "T") {
		t.Error("state strip out of order")
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	if RenderTimeline(&PlaybackResult{}, 40) != "" {
		t.Error("empty result should render nothing")
	}
}

// uulmSchedule is shared with playback_test.go; re-declared guard.
var _ = emotion.Distracted

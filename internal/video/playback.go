// Package video implements the affect-driven playback case study of §4
// (Fig 6 bottom): a 40-minute uulmMAC-style skin-conductance recording
// drives the H.264 decoder's operating mode over time, and the package
// integrates decode energy against an always-standard baseline.
package video

import (
	"fmt"

	"affectedge/internal/emotion"
	"affectedge/internal/h264"
	"affectedge/internal/power"
	"affectedge/internal/sc"
)

// ModePolicy maps attention states to decoder modes. The paper's policy:
// distracted viewers get the most aggressive saving, highly concentrated
// viewers the best quality.
type ModePolicy map[emotion.Attention]h264.DecoderMode

// PaperPolicy returns the mode schedule used in the paper's case study:
// distracted -> combined (DF off + S_th=140/f=1 deletion), concentrated ->
// deletion with DF on, tense (highly concentrated) -> standard, relaxed ->
// DF off.
func PaperPolicy() ModePolicy {
	return ModePolicy{
		emotion.Distracted:   h264.ModeCombined,
		emotion.Concentrated: h264.ModeDeletion,
		emotion.Tense:        h264.ModeStandard,
		emotion.Relaxed:      h264.ModeDFOff,
	}
}

// ModeRates holds per-mode decode power (energy per minute of video) and
// quality, measured once on a reference clip.
type ModeRates struct {
	EnergyPerMin map[h264.DecoderMode]float64
	PSNR         map[h264.DecoderMode]float64
}

// MeasureModeRates decodes the reference clip in every mode and converts
// total energy to an energy-per-minute rate at the given frame rate. The
// per-mode decodes fan out over the shared internal/parallel worker pool
// (via h264.CompareModes), so measurement is bounded by
// parallel.SetWorkers and deterministic at any worker count.
func MeasureModeRates(src []*h264.Frame, enc h264.EncoderConfig, model h264.EnergyModel, fps float64) (*ModeRates, error) {
	if fps <= 0 {
		return nil, fmt.Errorf("video: fps %g must be positive", fps)
	}
	if len(src) == 0 {
		return nil, fmt.Errorf("video: empty reference clip")
	}
	reports, err := h264.CompareModes(src, enc, model)
	if err != nil {
		return nil, err
	}
	minutes := float64(len(src)) / fps / 60
	out := &ModeRates{
		EnergyPerMin: map[h264.DecoderMode]float64{},
		PSNR:         map[h264.DecoderMode]float64{},
	}
	for _, r := range reports {
		out.EnergyPerMin[r.Mode] = r.Energy / minutes
		out.PSNR[r.Mode] = r.PSNR
	}
	return out, nil
}

// Segment is one span of playback in a fixed mode.
type Segment struct {
	StartMin, EndMin float64
	State            emotion.Attention
	Mode             h264.DecoderMode
	Energy           float64
}

// PlaybackResult aggregates the affect-driven playback study.
type PlaybackResult struct {
	Segments       []Segment
	Energy         float64 // affect-driven total
	BaselineEnergy float64 // always-standard total
	SavingPct      float64 // Fig 6 bottom headline number
	// ClassifierAccuracy is set when the schedule came from the SC
	// classifier rather than ground truth.
	ClassifierAccuracy float64
}

// RunWithSchedule integrates energy over an explicit labelled schedule
// (ground-truth driving, the paper's presentation).
func RunWithSchedule(schedule []Scheduled, rates *ModeRates, policy ModePolicy) (*PlaybackResult, error) {
	if len(schedule) == 0 {
		return nil, fmt.Errorf("video: empty schedule")
	}
	res := &PlaybackResult{}
	stdRate := rates.EnergyPerMin[h264.ModeStandard]
	for _, s := range schedule {
		dur := s.EndMin - s.StartMin
		if dur < 0 {
			return nil, fmt.Errorf("video: segment [%g,%g] has negative duration", s.StartMin, s.EndMin)
		}
		mode, ok := policy[s.State]
		if !ok {
			return nil, fmt.Errorf("video: policy has no mode for state %v", s.State)
		}
		rate, ok := rates.EnergyPerMin[mode]
		if !ok {
			return nil, fmt.Errorf("video: no measured rate for mode %v", mode)
		}
		e := rate * dur
		res.Segments = append(res.Segments, Segment{
			StartMin: s.StartMin, EndMin: s.EndMin, State: s.State, Mode: mode, Energy: e,
		})
		res.Energy += e
		res.BaselineEnergy += stdRate * dur
	}
	if res.BaselineEnergy > 0 {
		res.SavingPct = 100 * (1 - res.Energy/res.BaselineEnergy)
	}
	return res, nil
}

// Scheduled is one labelled span of the viewing session.
type Scheduled struct {
	StartMin, EndMin float64
	State            emotion.Attention
}

// RunWithClassifier classifies a raw SC recording and integrates energy
// over the classifier's windowed decisions — the full sensing-to-hardware
// loop. truth, when non-nil, is used to report classification accuracy.
func RunWithClassifier(samples []float64, sampleRate float64, cfg sc.Config,
	rates *ModeRates, policy ModePolicy,
	truth func(minute float64) emotion.Attention) (*PlaybackResult, error) {

	windows, err := sc.Classify(samples, sampleRate, cfg)
	if err != nil {
		return nil, err
	}
	schedule := make([]Scheduled, len(windows))
	for i, w := range windows {
		schedule[i] = Scheduled{StartMin: w.StartMin, EndMin: w.EndMin, State: w.State}
	}
	res, err := RunWithSchedule(schedule, rates, policy)
	if err != nil {
		return nil, err
	}
	if truth != nil {
		res.ClassifierAccuracy = sc.Accuracy(windows, truth)
	}
	return res, nil
}

// EnergyLedger renders the per-mode energy split of a result for
// reporting.
func (r *PlaybackResult) EnergyLedger() *power.Ledger {
	l := power.NewLedger()
	for _, s := range r.Segments {
		l.MustAdd(power.Component("mode:"+s.Mode.String()), s.Energy)
	}
	return l
}

package video

import (
	"fmt"
	"strings"

	"affectedge/internal/h264"
)

// RenderTimeline draws the Fig 6 (bottom) style session panel as ASCII:
// one row per decoder mode, marked where that mode was active, plus a
// state strip. width columns cover the whole session.
func RenderTimeline(res *PlaybackResult, width int) string {
	if len(res.Segments) == 0 {
		return ""
	}
	if width <= 0 {
		width = 80
	}
	total := res.Segments[len(res.Segments)-1].EndMin
	if total <= 0 {
		return ""
	}
	colOf := func(min float64) int {
		c := int(min / total * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	var b strings.Builder
	for _, mode := range h264.Modes() {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, s := range res.Segments {
			if s.Mode != mode {
				continue
			}
			for c := colOf(s.StartMin); c <= colOf(s.EndMin-1e-9); c++ {
				row[c] = '#'
			}
		}
		fmt.Fprintf(&b, "%-10s|%s|\n", mode, row)
	}
	// State strip: initial letter of each segment's attention state.
	strip := make([]byte, width)
	for i := range strip {
		strip[i] = ' '
	}
	for _, s := range res.Segments {
		ch := strings.ToUpper(s.State.String())[0]
		for c := colOf(s.StartMin); c <= colOf(s.EndMin-1e-9); c++ {
			strip[c] = ch
		}
	}
	fmt.Fprintf(&b, "%-10s|%s|\n", "state", strip)
	fmt.Fprintf(&b, "%-10s|0%*s|\n", "minutes", width-1, fmt.Sprintf("%.0f", total))
	return b.String()
}

package video

import (
	"math"
	"testing"

	"affectedge/internal/affectdata"
	"affectedge/internal/emotion"
	"affectedge/internal/h264"
	"affectedge/internal/sc"
)

// measureRates builds the reference-clip mode rates once per test run.
func measureRates(t *testing.T) *ModeRates {
	t.Helper()
	src, err := h264.GenerateVideo(h264.CalibrationVideoConfig(48))
	if err != nil {
		t.Fatal(err)
	}
	rates, err := MeasureModeRates(src, h264.CalibrationEncoderConfig(), h264.DefaultEnergyModel(), 24)
	if err != nil {
		t.Fatal(err)
	}
	return rates
}

func uulmSchedule() []Scheduled {
	var out []Scheduled
	for _, s := range affectdata.UulmMACSchedule() {
		out = append(out, Scheduled{StartMin: s.StartMin, EndMin: s.EndMin, State: s.State})
	}
	return out
}

func TestPaperPolicyMapping(t *testing.T) {
	p := PaperPolicy()
	if p[emotion.Distracted] != h264.ModeCombined {
		t.Error("distracted should map to combined")
	}
	if p[emotion.Tense] != h264.ModeStandard {
		t.Error("tense should map to standard")
	}
	if p[emotion.Relaxed] != h264.ModeDFOff {
		t.Error("relaxed should map to DF-off")
	}
	if p[emotion.Concentrated] != h264.ModeDeletion {
		t.Error("concentrated should map to deletion")
	}
}

func TestModeRatesOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("decode-heavy test skipped in -short mode")
	}
	rates := measureRates(t)
	std := rates.EnergyPerMin[h264.ModeStandard]
	for _, m := range h264.Modes() {
		if m == h264.ModeStandard {
			continue
		}
		if rates.EnergyPerMin[m] >= std {
			t.Errorf("mode %v rate %.0f not below standard %.0f", m, rates.EnergyPerMin[m], std)
		}
	}
	if rates.EnergyPerMin[h264.ModeCombined] >= rates.EnergyPerMin[h264.ModeDFOff] {
		t.Error("combined should save more than DF-off alone")
	}
}

// TestFig6PlaybackEnergySaving reproduces the paper's 23.1% case-study
// saving within +-2.5 percentage points, driving modes from the
// ground-truth uulmMAC schedule.
func TestFig6PlaybackEnergySaving(t *testing.T) {
	if testing.Short() {
		t.Skip("decode-heavy test skipped in -short mode")
	}
	rates := measureRates(t)
	res, err := RunWithSchedule(uulmSchedule(), rates, PaperPolicy())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("playback saving %.1f%% (paper: 23.1%%)", res.SavingPct)
	if math.Abs(res.SavingPct-23.1) > 2.5 {
		t.Errorf("playback saving %.1f%%, want 23.1 +- 2.5", res.SavingPct)
	}
	if len(res.Segments) != 4 {
		t.Errorf("%d segments, want 4", len(res.Segments))
	}
	// Segment modes follow the paper's narrative.
	wantModes := []h264.DecoderMode{
		h264.ModeCombined, h264.ModeDeletion, h264.ModeStandard, h264.ModeDFOff,
	}
	for i, s := range res.Segments {
		if s.Mode != wantModes[i] {
			t.Errorf("segment %d mode %v, want %v", i, s.Mode, wantModes[i])
		}
	}
}

// TestPlaybackWithClassifier runs the full loop: synthetic SC recording ->
// classifier -> mode schedule -> energy. The saving should be close to the
// ground-truth-driven number (classifier errors cost a little).
func TestPlaybackWithClassifier(t *testing.T) {
	if testing.Short() {
		t.Skip("decode-heavy test skipped in -short mode")
	}
	rates := measureRates(t)
	tr, err := affectdata.GenerateSC(affectdata.UulmMACSchedule(), 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithClassifier(tr.Samples, tr.SampleRate, sc.DefaultConfig(),
		rates, PaperPolicy(), tr.StateAt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("classifier-driven saving %.1f%% (accuracy %.2f)", res.SavingPct, res.ClassifierAccuracy)
	if res.ClassifierAccuracy < 0.7 {
		t.Errorf("classifier accuracy %.2f too low", res.ClassifierAccuracy)
	}
	if math.Abs(res.SavingPct-23.1) > 6 {
		t.Errorf("classifier-driven saving %.1f%% too far from 23.1%%", res.SavingPct)
	}
	// Ledger splits by mode and sums to the total.
	l := res.EnergyLedger()
	if math.Abs(l.Total()-res.Energy) > 1e-6*res.Energy {
		t.Error("ledger total != energy")
	}
}

func TestRunWithScheduleErrors(t *testing.T) {
	rates := &ModeRates{EnergyPerMin: map[h264.DecoderMode]float64{h264.ModeStandard: 1}}
	if _, err := RunWithSchedule(nil, rates, PaperPolicy()); err == nil {
		t.Error("empty schedule accepted")
	}
	bad := []Scheduled{{StartMin: 5, EndMin: 1, State: emotion.Tense}}
	if _, err := RunWithSchedule(bad, rates, PaperPolicy()); err == nil {
		t.Error("negative duration accepted")
	}
	missing := []Scheduled{{StartMin: 0, EndMin: 1, State: emotion.Distracted}}
	if _, err := RunWithSchedule(missing, rates, PaperPolicy()); err == nil {
		t.Error("missing mode rate accepted")
	}
	if _, err := RunWithSchedule(missing, rates, ModePolicy{}); err == nil {
		t.Error("empty policy accepted")
	}
}

func TestMeasureModeRatesErrors(t *testing.T) {
	if _, err := MeasureModeRates(nil, h264.CalibrationEncoderConfig(), h264.DefaultEnergyModel(), 24); err == nil {
		t.Error("empty clip accepted")
	}
	src, err := h264.GenerateVideo(h264.CalibrationVideoConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureModeRates(src, h264.CalibrationEncoderConfig(), h264.DefaultEnergyModel(), 0); err == nil {
		t.Error("zero fps accepted")
	}
}

// Package sim is a minimal discrete-event simulation kernel shared by the
// playback and app-management simulators: a virtual clock and a time-ordered
// event queue with stable FIFO ordering for simultaneous events.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tiebreaker: FIFO among equal timestamps
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. The zero value is not usable; call New.
type Sim struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
}

// New returns a simulator with the clock at zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn at an absolute virtual time, which must not be in the
// past.
func (s *Sim) At(t time.Duration, fn func()) error {
	if t < s.now {
		return fmt.Errorf("sim: schedule at %v is before now %v", t, s.now)
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
	return nil
}

// After schedules fn after a non-negative delay from now.
func (s *Sim) After(d time.Duration, fn func()) error {
	if d < 0 {
		return fmt.Errorf("sim: negative delay %v", d)
	}
	return s.At(s.now+d, fn)
}

// Step runs the next pending event, advancing the clock to it. It reports
// whether an event was run.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	e.fn()
	return true
}

// Run executes events until the queue is empty or the clock would pass
// until; the clock ends at min(until, last event time >= now). Events
// scheduled during Run are honored.
func (s *Sim) Run(until time.Duration) {
	for len(s.queue) > 0 && s.queue[0].at <= until {
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }

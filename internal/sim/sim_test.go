package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	if err := s.At(3*time.Second, func() { got = append(got, 3) }); err != nil {
		t.Fatal(err)
	}
	if err := s.At(1*time.Second, func() { got = append(got, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := s.At(2*time.Second, func() { got = append(got, 2) }); err != nil {
		t.Fatal(err)
	}
	s.Run(10 * time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 10*time.Second {
		t.Errorf("clock = %v, want 10s", s.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		if err := s.At(time.Second, func() { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(2 * time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestScheduleInPastRejected(t *testing.T) {
	s := New()
	if err := s.At(time.Second, func() {}); err != nil {
		t.Fatal(err)
	}
	s.Run(5 * time.Second)
	if err := s.At(2*time.Second, func() {}); err == nil {
		t.Error("past schedule accepted")
	}
	if err := s.After(-time.Second, func() {}); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var fired int
	var chain func()
	chain = func() {
		fired++
		if fired < 5 {
			if err := s.After(time.Second, chain); err != nil {
				t.Error(err)
			}
		}
	}
	if err := s.After(time.Second, chain); err != nil {
		t.Fatal(err)
	}
	s.Run(100 * time.Second)
	if fired != 5 {
		t.Errorf("fired %d, want 5", fired)
	}
	if s.Pending() != 0 {
		t.Error("events still pending")
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	s := New()
	var fired bool
	if err := s.At(5*time.Second, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	s.Run(3 * time.Second)
	if fired {
		t.Error("event past until fired")
	}
	if s.Now() != 3*time.Second {
		t.Errorf("clock = %v, want 3s", s.Now())
	}
	if s.Pending() != 1 {
		t.Error("pending event lost")
	}
	s.Run(10 * time.Second)
	if !fired {
		t.Error("event never fired")
	}
}

func TestStepEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Error("Step on empty queue reported work")
	}
}

package affectedge

import (
	"fmt"
	"io"
	"math"
	"strings"

	"affectedge/internal/affect"
	"affectedge/internal/affectdata"
	"affectedge/internal/core"
	"affectedge/internal/emotion"
	"affectedge/internal/h264"
	"affectedge/internal/personality"
	"affectedge/internal/sc"
	"affectedge/internal/video"
)

// This file is the experiment harness: one entry point per quantitative
// figure of the paper, each returning a structured report plus a
// formatted table matching the figure's rows/series. cmd/repro and the
// root benchmarks are thin wrappers over these.

// Fig3Report covers Fig 3a-3d: per-corpus/model accuracy, the LSTM
// confusion matrix on RAVDESS, and float-vs-int8 size and accuracy.
type Fig3Report struct {
	Study *affect.StudyReport
	// ConfusionText is the formatted Fig 3a matrix.
	ConfusionText string
	// MeanAccuracy per model family (Fig 3b aggregation).
	MeanAccuracy map[string]float64
	// WeightKB maps model family to [floatKB, int8KB] on EMOVO (Fig 3c).
	WeightKB map[string][2]float64
	// QuantAccuracy maps model family to [float, int8] accuracy on EMOVO
	// (Fig 3d).
	QuantAccuracy map[string][2]float64
}

// Fig3Options scales the study cost.
type Fig3Options struct {
	// ClipsPerCorpus caps corpus size (0 = 420, the medium default).
	ClipsPerCorpus int
	// Epochs (0 = 14).
	Epochs int
	// PaperScale trains the full ~0.5M-parameter models (slow).
	PaperScale bool
	Seed       int64
	Progress   io.Writer
}

// RunFig3 trains and evaluates every model family on every corpus.
func RunFig3(opts Fig3Options) (*Fig3Report, error) {
	cfg := affect.DefaultStudyConfig()
	if opts.ClipsPerCorpus > 0 {
		cfg.ClipsPerCorpus = opts.ClipsPerCorpus
	}
	if opts.Epochs > 0 {
		cfg.Epochs = opts.Epochs
	}
	if opts.PaperScale {
		cfg.Scale = affect.PaperScale
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	cfg.Verbose = opts.Progress
	study, err := affect.RunStudy(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Fig3Report{
		Study:         study,
		MeanAccuracy:  map[string]float64{},
		WeightKB:      map[string][2]float64{},
		QuantAccuracy: map[string][2]float64{},
	}
	// Fig 3c compares deployment sizes of the paper-scale models (the
	// study may train reduced ones for speed); parameter budgets are a
	// property of the builders.
	budgets, err := affect.ParamBudgets(cfg.Feature, 7)
	if err != nil {
		return nil, err
	}
	for _, kind := range affect.ModelKinds() {
		rep.MeanAccuracy[kind.String()] = study.MeanAccuracy(kind)
		rep.WeightKB[kind.String()] = [2]float64{
			float64(budgets[kind]) * 4 / 1024, float64(budgets[kind]) / 1024,
		}
		if r, ok := study.Get("EMOVO", kind); ok {
			rep.QuantAccuracy[kind.String()] = [2]float64{r.Accuracy, r.QuantAccuracy}
		}
	}
	if r, ok := study.Get("RAVDESS", affect.LSTMNet); ok {
		rep.ConfusionText = affect.FormatConfusion(r.Confusion, r.Classes)
	}
	return rep, nil
}

// FormatFig3 renders the Fig 3 tables.
func (r *Fig3Report) FormatFig3() string {
	var b strings.Builder
	b.WriteString("Fig 3a — LSTM confusion matrix on RAVDESS (row-normalized %):\n")
	b.WriteString(r.ConfusionText)
	b.WriteString("\nFig 3b — classification accuracy (%):\n")
	fmt.Fprintf(&b, "%-10s", "corpus")
	for _, k := range affect.ModelKinds() {
		fmt.Fprintf(&b, "%8s", k)
	}
	b.WriteByte('\n')
	for _, spec := range affectdata.Corpora() {
		fmt.Fprintf(&b, "%-10s", spec.Name)
		for _, k := range affect.ModelKinds() {
			if res, ok := r.Study.Get(spec.Name, k); ok {
				fmt.Fprintf(&b, "%8.1f", 100*res.Accuracy)
			} else {
				fmt.Fprintf(&b, "%8s", "-")
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s", "mean")
	for _, k := range affect.ModelKinds() {
		fmt.Fprintf(&b, "%8.1f", 100*r.MeanAccuracy[k.String()])
	}
	b.WriteByte('\n')
	b.WriteString("\nFig 3c — weight size on EMOVO (KB):\n")
	fmt.Fprintf(&b, "%-10s%10s%10s\n", "model", "float", "8bit")
	for _, k := range affect.ModelKinds() {
		w := r.WeightKB[k.String()]
		fmt.Fprintf(&b, "%-10s%10.0f%10.0f\n", k, w[0], w[1])
	}
	b.WriteString("\nFig 3d — accuracy with precision on EMOVO (%):\n")
	fmt.Fprintf(&b, "%-10s%10s%10s\n", "model", "float", "8bit")
	for _, k := range affect.ModelKinds() {
		q := r.QuantAccuracy[k.String()]
		fmt.Fprintf(&b, "%-10s%10.1f%10.1f\n", k, 100*q[0], 100*q[1])
	}
	return b.String()
}

// Fig6Report covers Fig 6 middle (per-mode power) and bottom (playback
// energy saving over the 40-minute SC session).
type Fig6Report struct {
	Modes []h264.ModeReport
	// PlaybackSavingPct is the ground-truth-schedule saving (paper: 23.1).
	PlaybackSavingPct float64
	// ClassifierSavingPct drives modes from the SC classifier instead.
	ClassifierSavingPct float64
	ClassifierAccuracy  float64
	// AreaOverheadPct is the pre-store buffer area cost (paper: 4.23).
	AreaOverheadPct float64
}

// RunFig6 measures the four decoder modes on the reference clip and runs
// the 40-minute playback study.
func RunFig6(seed int64) (*Fig6Report, error) {
	src, err := h264.GenerateVideo(h264.CalibrationVideoConfig(48))
	if err != nil {
		return nil, err
	}
	model := h264.DefaultEnergyModel()
	enc := h264.CalibrationEncoderConfig()
	modes, err := h264.CompareModes(src, enc, model)
	if err != nil {
		return nil, err
	}
	rates, err := video.MeasureModeRates(src, enc, model, 24)
	if err != nil {
		return nil, err
	}
	var schedule []video.Scheduled
	for _, s := range affectdata.UulmMACSchedule() {
		schedule = append(schedule, video.Scheduled{StartMin: s.StartMin, EndMin: s.EndMin, State: s.State})
	}
	truthRes, err := video.RunWithSchedule(schedule, rates, video.PaperPolicy())
	if err != nil {
		return nil, err
	}
	tr, err := affectdata.GenerateSC(affectdata.UulmMACSchedule(), 4, seed)
	if err != nil {
		return nil, err
	}
	clsRes, err := video.RunWithClassifier(tr.Samples, tr.SampleRate, sc.DefaultConfig(),
		rates, video.PaperPolicy(), tr.StateAt)
	if err != nil {
		return nil, err
	}
	return &Fig6Report{
		Modes:               modes,
		PlaybackSavingPct:   truthRes.SavingPct,
		ClassifierSavingPct: clsRes.SavingPct,
		ClassifierAccuracy:  clsRes.ClassifierAccuracy,
		AreaOverheadPct:     100 * h264.PreStoreAreaOverhead,
	}, nil
}

// FormatFig6 renders the Fig 6 tables.
func (r *Fig6Report) FormatFig6() string {
	var b strings.Builder
	b.WriteString("Fig 6 (middle) — decoder power in different modes:\n")
	fmt.Fprintf(&b, "%-10s%12s%12s%10s%10s\n", "mode", "norm power", "saving %", "PSNR dB", "deleted")
	for _, m := range r.Modes {
		psnr := fmt.Sprintf("%.1f", m.PSNR)
		if math.IsInf(m.PSNR, 1) {
			psnr = "inf"
		}
		fmt.Fprintf(&b, "%-10s%12.3f%12.1f%10s%10d\n", m.Mode, m.NormPower, m.SavingPct, psnr, m.Deleted)
	}
	fmt.Fprintf(&b, "pre-store buffer area overhead: %.2f%% (paper: 4.23%%)\n", r.AreaOverheadPct)
	b.WriteString("\nFig 6 (bottom) — affect-driven playback over the 40-min uulmMAC session:\n")
	fmt.Fprintf(&b, "energy saving (ground-truth schedule): %.1f%% (paper: 23.1%%)\n", r.PlaybackSavingPct)
	fmt.Fprintf(&b, "energy saving (SC classifier, acc %.2f): %.1f%%\n", r.ClassifierAccuracy, r.ClassifierSavingPct)
	return b.String()
}

// Fig7Report is the per-subject category usage mix.
type Fig7Report struct {
	Subjects []personality.Subject
}

// RunFig7 returns the four subjects' usage distributions.
func RunFig7() *Fig7Report { return &Fig7Report{Subjects: personality.Subjects()} }

// FormatFig7 renders the Fig 7 (left) usage table: top categories per
// subject.
func (r *Fig7Report) FormatFig7() string {
	var b strings.Builder
	b.WriteString("Fig 7 (left) — app usage by category, 4 subjects (%):\n")
	fmt.Fprintf(&b, "%-22s", "category")
	for _, s := range r.Subjects {
		fmt.Fprintf(&b, "  subj%d", s.ID)
	}
	b.WriteByte('\n')
	for _, c := range personality.Categories() {
		fmt.Fprintf(&b, "%-22s", c)
		for _, s := range r.Subjects {
			fmt.Fprintf(&b, "%7.1f", 100*s.Usage[c])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-22s", "messaging+browsing")
	for _, s := range r.Subjects {
		fmt.Fprintf(&b, "%7.1f", 100*s.MessagingBrowsingShare())
	}
	b.WriteByte('\n')
	return b.String()
}

// Fig9Report carries the process-lifespan diagrams of both managers.
type Fig9Report struct {
	BaselineDiagram  string
	EmotionalDiagram string
	BaselineKills    int
	EmotionalKills   int
}

// RunFig9 replays the 20-minute emotional session under both managers and
// renders their process diagrams.
func RunFig9(seed int64, width int) (*Fig9Report, error) {
	cfg := core.DefaultAppStudyConfig()
	cfg.Monkey.Seed = seed
	res, err := core.RunAppStudy(cfg)
	if err != nil {
		return nil, err
	}
	return &Fig9Report{
		BaselineDiagram:  res.Comparison.Baseline.Device.Trace().RenderASCII(res.Horizon, width),
		EmotionalDiagram: res.Comparison.Emotional.Device.Trace().RenderASCII(res.Horizon, width),
		BaselineKills:    res.Comparison.Baseline.Metrics.Kills,
		EmotionalKills:   res.Comparison.Emotional.Metrics.Kills,
	}, nil
}

// FormatFig9 renders both diagrams ('=' alive, '.' dead).
func (r *Fig9Report) FormatFig9() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9 (top) — default FIFO manager (%d kills):\n%s\n", r.BaselineKills, r.BaselineDiagram)
	fmt.Fprintf(&b, "Fig 9 (bottom) — emotional manager (%d kills):\n%s", r.EmotionalKills, r.EmotionalDiagram)
	return b.String()
}

// Fig10Report is the memory/time saving headline.
type Fig10Report struct {
	MemorySavingPct float64
	TimeSavingPct   float64
	// Per-seed raw results.
	BaselineBytes, EmotionalBytes     int64
	BaselineTimeSec, EmotionalTimeSec float64
	Seeds                             []int64
}

// RunFig10 averages the app-management savings over seeds (paper: 17%
// memory, 12% time).
func RunFig10(seeds []int64) (*Fig10Report, error) {
	if len(seeds) == 0 {
		for s := int64(1); s <= 12; s++ {
			seeds = append(seeds, s)
		}
	}
	cfg := core.DefaultAppStudyConfig()
	rep := &Fig10Report{Seeds: seeds}
	for _, s := range seeds {
		c := cfg
		c.Monkey.Seed = s
		res, err := core.RunAppStudy(c)
		if err != nil {
			return nil, err
		}
		rep.BaselineBytes += res.Comparison.Baseline.Metrics.BytesLoaded
		rep.EmotionalBytes += res.Comparison.Emotional.Metrics.BytesLoaded
		rep.BaselineTimeSec += res.Comparison.Baseline.Metrics.LoadingTime.Seconds()
		rep.EmotionalTimeSec += res.Comparison.Emotional.Metrics.LoadingTime.Seconds()
	}
	if rep.BaselineBytes > 0 {
		rep.MemorySavingPct = 100 * (1 - float64(rep.EmotionalBytes)/float64(rep.BaselineBytes))
	}
	if rep.BaselineTimeSec > 0 {
		rep.TimeSavingPct = 100 * (1 - rep.EmotionalTimeSec/rep.BaselineTimeSec)
	}
	return rep, nil
}

// FormatFig10 renders the Fig 10 bars.
func (r *Fig10Report) FormatFig10() string {
	var b strings.Builder
	b.WriteString("Fig 10 — app start memory and loading time (sum over seeds):\n")
	fmt.Fprintf(&b, "%-16s%16s%16s\n", "", "emotion driven", "baseline")
	fmt.Fprintf(&b, "%-16s%16.3e%16.3e  (%.1f%% saving; paper 17%%)\n",
		"loaded bytes", float64(r.EmotionalBytes), float64(r.BaselineBytes), r.MemorySavingPct)
	fmt.Fprintf(&b, "%-16s%16.1f%16.1f  (%.1f%% saving; paper 12%%)\n",
		"loading time s", r.EmotionalTimeSec, r.BaselineTimeSec, r.TimeSavingPct)
	return b.String()
}

// emotionLabelsVar keeps the emotion import used when building subsets of
// the reports programmatically.
var _ = emotion.Neutral

# affectedge — reproduction of the DAC'22 affect-driven system-management paper.

GO ?= go

.PHONY: all build test test-short bench repro figures clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the training-heavy studies (seconds instead of minutes).
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure of the paper (paper-vs-measured tables).
repro:
	$(GO) run ./cmd/repro

# Record the deliverable outputs.
figures:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...

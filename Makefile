# affectedge — reproduction of the DAC'22 affect-driven system-management paper.

GO ?= go

# bash with pipefail so piped targets (figures) fail when the underlying
# command fails instead of taking tee's exit code.
SHELL := /bin/bash
.SHELLFLAGS := -eu -o pipefail -c

.PHONY: all build vet test test-short test-noavx test-race stream-smoke chaos-smoke server-smoke cover bench bench-json bench-compare bench-guard repro figures fleet-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the training-heavy studies (seconds instead of minutes).
test-short:
	$(GO) test -short ./...

# The simd-consuming suites with the vector backend force-disabled
# (AFFECTEDGE_NOSIMD): proves the scalar fallbacks carry the same
# goldens and differential pins, i.e. what a non-AVX host would run.
test-noavx:
	AFFECTEDGE_NOSIMD=1 $(GO) test ./internal/simd/ ./internal/dsp/ ./internal/nn/ ./internal/h264/ ./internal/stream/ ./internal/affect/

# The streaming-ingestion concurrency suites under the race detector:
# FIFO producer/consumer interleavings, goroutine-leak checks, and the
# progressive decoder's SPSC path. Fast enough to run on every change.
stream-smoke:
	$(GO) test -race ./internal/stream/
	$(GO) test -race -run 'Stream|Chunk' ./internal/dsp/ ./internal/h264/ ./internal/fleet/

# The fleet chaos harness under the race detector: randomized
# disconnect/reconnect/snapshot/restore interleavings checked against a
# churn-free oracle fingerprint, plus the live-mode lifecycle storm and
# the snapshot fuzz corpus as regression seeds. Fast enough to run on
# every serving-layer change.
chaos-smoke:
	$(GO) test -race -run 'TestChurnFingerprintStable|TestChaosLiveLifecycle|FuzzSnapshotRestore' ./internal/fleet/

# The network serving layer under the race detector: wire protocol
# round-trip/golden/fuzz-seed suites plus the loopback TCP integration
# tests (accounting in both window-1 and batched-pipelined modes, abrupt
# disconnect, slow-reader kill, partial-NACK retry, drain ordering,
# TCP-vs-in-process fingerprint equality across batch sizes {1,8,64} at
# 1 and 8 workers), then an end-to-end batched fleetload verify run.
server-smoke:
	$(GO) test -race ./internal/wire/ ./internal/server/
	$(GO) run -race ./cmd/fleetload -sessions 64 -obs 32 -batch 16 -window 4 -verify > /dev/null

# Full suite under the race detector: exercises the worker pool, the
# parallel featurization/synthesis/study paths, and replica training.
# Race instrumentation makes the training-heavy root package exceed go
# test's default 10-minute timeout on small machines, hence -timeout.
# Also replays the simd-sensitive suites with dispatch forced off.
test-race: test-noavx stream-smoke chaos-smoke server-smoke
	$(GO) test -race -timeout 45m ./...

# Coverage gate over the -short suite (the training-heavy full studies
# add wall time, not meaningful line coverage). Baseline measured at
# 80.1% total statements (2026-08-06); the floor sits 1 point below so
# coverage can only erode by deliberately lowering it here. The fleet
# serving layer carries its own per-package floor: it is the concurrency
# hot spot, so its tests must keep covering the shard/coalescer paths.
# The stream package (bounded FIFOs under every ingest pipeline) carries
# one too: a coverage hole there is an untested blocking/backpressure
# interleaving.
COVER_FLOOR := 79.1
FLEET_COVER_FLOOR := 86.5
STREAM_COVER_FLOOR := 85.0
WIRE_COVER_FLOOR := 90.0
SERVER_COVER_FLOOR := 80.0
cover:
	$(GO) test -short -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { gsub("%","",$$3); print $$3 }'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' \
		|| { echo "FAIL: coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }
	@fleet=$$($(GO) test -short -cover ./internal/fleet/ | awk '{ for (i=1;i<=NF;i++) if ($$i ~ /%/) { gsub("%","",$$i); print $$i } }'); \
	echo "fleet coverage: $$fleet% (floor: $(FLEET_COVER_FLOOR)%)"; \
	awk -v t="$$fleet" -v f="$(FLEET_COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' \
		|| { echo "FAIL: fleet coverage $$fleet% is below the $(FLEET_COVER_FLOOR)% floor"; exit 1; }
	@str=$$($(GO) test -short -cover ./internal/stream/ | awk '{ for (i=1;i<=NF;i++) if ($$i ~ /%/) { gsub("%","",$$i); print $$i } }'); \
	echo "stream coverage: $$str% (floor: $(STREAM_COVER_FLOOR)%)"; \
	awk -v t="$$str" -v f="$(STREAM_COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' \
		|| { echo "FAIL: stream coverage $$str% is below the $(STREAM_COVER_FLOOR)% floor"; exit 1; }
	@wire=$$($(GO) test -short -cover ./internal/wire/ | awk '{ for (i=1;i<=NF;i++) if ($$i ~ /%/) { gsub("%","",$$i); print $$i } }'); \
	echo "wire coverage: $$wire% (floor: $(WIRE_COVER_FLOOR)%)"; \
	awk -v t="$$wire" -v f="$(WIRE_COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' \
		|| { echo "FAIL: wire coverage $$wire% is below the $(WIRE_COVER_FLOOR)% floor"; exit 1; }
	@srv=$$($(GO) test -short -cover ./internal/server/ | awk '{ for (i=1;i<=NF;i++) if ($$i ~ /%/) { gsub("%","",$$i); print $$i } }'); \
	echo "server coverage: $$srv% (floor: $(SERVER_COVER_FLOOR)%)"; \
	awk -v t="$$srv" -v f="$(SERVER_COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' \
		|| { echo "FAIL: server coverage $$srv% is below the $(SERVER_COVER_FLOOR)% floor"; exit 1; }

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable micro-benchmark snapshot: writes BENCH_<n>.json for the
# first free n, so the perf trajectory accumulates across PRs.
bench-json:
	n=1; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
	$(GO) test -run '^$$' -bench=. -benchmem ./internal/dsp/ ./internal/nn/ ./internal/affect/ ./internal/fleet/ ./internal/h264/ ./internal/stream/ ./internal/wire/ ./internal/server/ \
		| $(GO) run ./cmd/benchjson -out BENCH_$$n.json; \
	echo "wrote BENCH_$$n.json"

# Diff the two most recent snapshots (ratios below 1.00x are speedups).
bench-compare:
	files=$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -2); \
	set -- $$files; \
	if [ $$# -lt 2 ]; then echo "need at least two BENCH_<n>.json files"; exit 1; fi; \
	$(GO) run ./cmd/benchjson -compare $$1 $$2

# Perf regression gate over the two most recent snapshots: the named
# hot-path set (wire codec, fleet submission, loopback serving, MFCC
# chain, bit packing) may not slow down more than BENCH_MAX_REGRESS
# percent, or the target exits nonzero. End-to-end aggregates stay out of
# the set — they are load-dependent and would make the gate flaky.
BENCH_MAX_REGRESS := 25
BENCH_GUARD_SET := ^Benchmark(EncodeObserve|DecodeObserve|SplitObserve|FleetObserve|LoopbackObserve|MFCC|PowerSpectrum|MelFilterBank|WriteUE|WriteBits)
bench-guard:
	files=$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -2); \
	set -- $$files; \
	if [ $$# -lt 2 ]; then echo "need at least two BENCH_<n>.json files"; exit 1; fi; \
	$(GO) run ./cmd/benchjson -compare -max-regress $(BENCH_MAX_REGRESS) -match '$(BENCH_GUARD_SET)' $$1 $$2

# Regenerate every figure of the paper (paper-vs-measured tables).
repro:
	$(GO) run ./cmd/repro

# Record the deliverable outputs.
figures:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Quick end-to-end fleet check: 200 sessions, 2 virtual seconds, race
# detector on. Verifies the serving layer builds, runs, and reports.
fleet-smoke:
	$(GO) run -race ./cmd/fleetsim -sessions 200 -shards 4 -duration 2s

clean:
	$(GO) clean ./...
